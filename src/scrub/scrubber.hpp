// Background KV scrubber — find latent corruption before a read trips on it.
//
// The KV pool, the contiguous caches and the sealed metadata records are
// all verified *on read*: a corrupted page sits undetected until the next
// decode step touches it. For an idle or parked session that window is
// unbounded — exactly the latent-fault exposure disk systems close with a
// patrol scrub. This is that scrub for the serving stack: a pacing engine
// that walks verify-and-heal items (a session's pages per layer, its page
// table, its sealed metadata) during tick slack, either
//
//   - manually (`run_tick()` — one budgeted pass on the calling thread;
//     the deterministic stepper and the manual-mode scheduler drive it
//     this way, so campaign trials replay tick-for-tick), or
//   - on a rate-limited background thread (`start()` — one pass per
//     interval, serialized against the host through `Options::guard`).
//
// The scrubber is deliberately generic: the host supplies a provider that
// snapshots the current walk list each pass, and every item is a closure
// that verifies, heals and attributes its own outcome (the scheduler's
// items run guarded_page_verify / guarded_meta_verify against the owning
// session's accounting). The scrubber itself only paces, cursors and
// counts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/hooks.hpp"

namespace flashabft::scrub {

/// What one verify-and-heal item observed.
enum class ItemOutcome {
  kClean,         ///< checksums verified on the first look.
  kRepaired,      ///< latent fault found and healed from a mirror.
  kUnrepairable,  ///< fault found, heal failed (double fault) — escalated.
};

/// One unit of scrub work. The closure owns verification, healing and
/// attribution; it must be safe to run under the host's guard mutex.
struct ScrubItem {
  std::function<ItemOutcome()> run;
};

/// Monotonic scrub counters (telemetry's view).
struct ScrubStats {
  std::uint64_t passes = 0;          ///< run_tick calls that saw items.
  std::uint64_t items_scrubbed = 0;  ///< verify-and-heal items executed.
  std::uint64_t faults_found = 0;    ///< items that alarmed (latent faults).
  std::uint64_t repairs = 0;         ///< faults healed from a mirror.
  std::uint64_t unrepairable = 0;    ///< faults that survived the heal.
};

class Scrubber {
 public:
  /// Snapshots the current walk list. Called at the start of every pass
  /// (under the guard mutex, when one is configured) so items never
  /// outlive the state they capture.
  using Provider = std::function<std::vector<ScrubItem>()>;

  struct Options {
    /// Items verified per pass; 0 = the whole walk list every pass.
    std::size_t budget = 0;
    /// Thread mode: pacing between passes.
    std::chrono::microseconds interval{200};
    /// Serializes passes against the host's own mutations (the continuous
    /// scheduler hands its tick mutex here). May be null when the host
    /// drives run_tick() single-threaded.
    std::mutex* guard = nullptr;
    /// Thread mode: invoked after every paced pass, outside the guard, so
    /// the host can republish counters even while it is otherwise idle
    /// (an idle scheduler runs no ticks, but passes keep accumulating).
    /// `stop()` invokes it one final time after joining the thread, so a
    /// post-stop snapshot always reflects the last pass (not one tick
    /// stale).
    std::function<void()> on_pass;
    /// Observability taps: each pass runs under a trace span; repairs and
    /// unrepairable finds go to the flight recorder. All-null = off.
    obs::ObsHooks obs{};
  };

  Scrubber(Provider provider, Options options);
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// One budgeted pass over the provider's current items, resuming from
  /// the rotating cursor so successive passes cover the full walk even
  /// under a small budget. Returns the number of items scrubbed.
  std::size_t run_tick();

  /// Spawns the rate-limited background thread (idempotent).
  void start();
  /// Stops and joins the background thread (idempotent; the destructor
  /// calls it).
  void stop();

  [[nodiscard]] ScrubStats stats() const;

 private:
  void loop();
  std::size_t pass_locked();

  Provider provider_;
  Options options_;

  std::size_t cursor_ = 0;  ///< rotating walk position across passes.

  mutable std::mutex stats_mutex_;
  ScrubStats stats_;  ///< guarded by stats_mutex_.

  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace flashabft::scrub
