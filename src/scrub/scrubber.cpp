#include "scrub/scrubber.hpp"

#include <algorithm>
#include <utility>

#include "common/ensure.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace flashabft::scrub {

Scrubber::Scrubber(Provider provider, Options options)
    : provider_(std::move(provider)), options_(options) {
  FLASHABFT_ENSURE_MSG(provider_, "scrubber needs an item provider");
}

Scrubber::~Scrubber() { stop(); }

std::size_t Scrubber::run_tick() {
  if (options_.guard != nullptr) {
    std::lock_guard lock(*options_.guard);
    return pass_locked();
  }
  return pass_locked();
}

std::size_t Scrubber::pass_locked() {
  const std::vector<ScrubItem> items = provider_();
  if (items.empty()) return 0;
  obs::TraceSpan pass_span(options_.obs.trace, "scrub-pass", "scrub");
  const std::size_t take = options_.budget == 0
                               ? items.size()
                               : std::min(options_.budget, items.size());
  std::size_t found = 0, repaired = 0, dead = 0;
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t slot = (cursor_ + i) % items.size();
    const ScrubItem& item = items[slot];
    switch (item.run()) {
      case ItemOutcome::kClean:
        break;
      case ItemOutcome::kRepaired:
        ++found;
        ++repaired;
        if (options_.obs.flight != nullptr) {
          options_.obs.flight->record(obs::FlightEventKind::kScrubRepair,
                                      "scrubber", "item", slot);
        }
        break;
      case ItemOutcome::kUnrepairable:
        ++found;
        ++dead;
        if (options_.obs.flight != nullptr) {
          options_.obs.flight->record(obs::FlightEventKind::kEscalation,
                                      "scrubber", "unrepairable", slot);
        }
        break;
    }
  }
  cursor_ = (cursor_ + take) % items.size();

  std::lock_guard stats_lock(stats_mutex_);
  ++stats_.passes;
  stats_.items_scrubbed += take;
  stats_.faults_found += found;
  stats_.repairs += repaired;
  stats_.unrepairable += dead;
  return take;
}

void Scrubber::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
}

void Scrubber::stop() {
  stop_.store(true, std::memory_order_relaxed);
  const bool was_running = thread_.joinable();
  if (was_running) thread_.join();
  // Final republish after the join: a stop racing the loop between its
  // run_tick() and its on_pass() would otherwise leave the host's mirrored
  // counters (and any post-run telemetry snapshot) one pass stale. Only
  // fired when a thread was actually joined — this call owns the "paced
  // mode is over" transition exactly once.
  if (was_running && options_.on_pass) options_.on_pass();
}

void Scrubber::loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    run_tick();
    if (options_.on_pass) options_.on_pass();
    std::this_thread::sleep_for(options_.interval);
  }
}

ScrubStats Scrubber::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

}  // namespace flashabft::scrub
