#include "scrub/scrubber.hpp"

#include <algorithm>
#include <utility>

#include "common/ensure.hpp"

namespace flashabft::scrub {

Scrubber::Scrubber(Provider provider, Options options)
    : provider_(std::move(provider)), options_(options) {
  FLASHABFT_ENSURE_MSG(provider_, "scrubber needs an item provider");
}

Scrubber::~Scrubber() { stop(); }

std::size_t Scrubber::run_tick() {
  if (options_.guard != nullptr) {
    std::lock_guard lock(*options_.guard);
    return pass_locked();
  }
  return pass_locked();
}

std::size_t Scrubber::pass_locked() {
  const std::vector<ScrubItem> items = provider_();
  if (items.empty()) return 0;
  const std::size_t take = options_.budget == 0
                               ? items.size()
                               : std::min(options_.budget, items.size());
  std::size_t found = 0, repaired = 0, dead = 0;
  for (std::size_t i = 0; i < take; ++i) {
    const ScrubItem& item = items[(cursor_ + i) % items.size()];
    switch (item.run()) {
      case ItemOutcome::kClean:
        break;
      case ItemOutcome::kRepaired:
        ++found;
        ++repaired;
        break;
      case ItemOutcome::kUnrepairable:
        ++found;
        ++dead;
        break;
    }
  }
  cursor_ = (cursor_ + take) % items.size();

  std::lock_guard stats_lock(stats_mutex_);
  ++stats_.passes;
  stats_.items_scrubbed += take;
  stats_.faults_found += found;
  stats_.repairs += repaired;
  stats_.unrepairable += dead;
  return take;
}

void Scrubber::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
}

void Scrubber::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void Scrubber::loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    run_tick();
    if (options_.on_pass) options_.on_pass();
    std::this_thread::sleep_for(options_.interval);
  }
}

ScrubStats Scrubber::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

}  // namespace flashabft::scrub
