// ModelReport — the full-model aggregation of the GuardedOp report stream.
//
// A `TransformerModel` forward threads one `GuardedExecutor` through every
// decoder layer; each layer yields a `LayerReport`, the final-norm/LM-head
// ops land in `final_ops`, and `ModelReport` rolls the whole pass up two
// ways: per layer (which layer alarmed/recovered/escalated) and per
// `OpKind` (attention vs projection vs FFN vs KV-cache vs fallback). The
// serving telemetry consumes the flattened stream; the rollup is the
// fault-attribution surface tests and demos assert against.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/guarded_op.hpp"

namespace flashabft {

/// Per-kind accounting of one report scope (a layer, or the whole model).
struct ModelOpStats {
  std::size_t checks = 0;     ///< ops reported (guarded + fallback).
  std::size_t alarms = 0;     ///< attempt-level alarm observations.
  std::size_t recovered = 0;  ///< ops whose retry passed the check.
  std::size_t escalated = 0;  ///< ops that exhausted their retries.
};

using ModelOpRollup = std::array<ModelOpStats, kOpKindCount>;

/// Aggregated reports of one full-model forward (prefill or decode step).
struct ModelReport {
  /// Per decoder layer, in stack order.
  std::vector<LayerReport> layers;
  /// Model-level ops outside any layer (the tied LM head projection).
  LayerReport final_ops;

  void add_layer(LayerReport report);

  [[nodiscard]] std::size_t num_layers() const { return layers.size(); }

  /// Per-op-kind rollup over every layer plus the final ops.
  [[nodiscard]] ModelOpRollup rollup() const;
  /// Per-op-kind rollup of one layer.
  [[nodiscard]] ModelOpRollup layer_rollup(std::size_t layer) const;

  // Flattened totals over the whole pass.
  [[nodiscard]] std::size_t executions() const;
  [[nodiscard]] std::size_t alarm_events() const;
  [[nodiscard]] std::size_t fallback_ops() const;
  [[nodiscard]] std::size_t recovered_ops() const;
  [[nodiscard]] std::size_t escalated_ops() const;
  /// Dual-modular glue comparisons / bitwise divergences over the pass
  /// (zero unless `GuardedExecutor::Options::dmr_glue` is on).
  [[nodiscard]] std::size_t dmr_compares() const;
  [[nodiscard]] std::size_t dmr_mismatches() const;
  /// Every accepted op's verdict passed — the cleanliness predicate.
  [[nodiscard]] bool all_accepted_clean() const;

  /// One flat OpReport stream in layer order then final ops — what a
  /// serving response carries to telemetry.
  [[nodiscard]] std::vector<OpReport> flatten() const;

  /// Merges another pass into this one layer-by-layer (decode steps of one
  /// generation session accumulate into a single session report).
  void merge(ModelReport other);
};

}  // namespace flashabft
