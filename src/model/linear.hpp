// Dense (fully-connected) layer: y = x W + b.
//
// Part of the Fig. 1 encoder-layer substrate: the Q/K/V projections, the
// attention output projection and both feed-forward layers are Linear.
#pragma once

#include <span>
#include <vector>

#include "core/guarded_op.hpp"
#include "tensor/matrix.hpp"
#include "tensor/random.hpp"

namespace flashabft {

/// A dense layer with an in_features x out_features weight and a bias.
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in_features, std::size_t out_features);

  /// Xavier/Glorot-style initialization: W ~ N(0, 1/in_features), b = 0.
  static Linear random_init(std::size_t in_features, std::size_t out_features,
                            Rng& rng);

  /// y = x W + b for a batch of rows (x: n x in_features).
  [[nodiscard]] MatrixD forward(const MatrixD& x) const;

  /// The same forward under the classic ABFT product check (Huang & Abraham
  /// 1984): predicted = dot(colsum(x), rowsum(W)) + n * sum(b), compared
  /// against the element sum of the produced output — so both the product
  /// and the bias add are covered. On context.backend == kSimd the pair
  /// comes out of the fused product tiles (backend_linear_fused) instead of
  /// a second pass; context.dtype is the storage format of the output (the
  /// fused kernels' write-back rounding contract). Executed through a
  /// GuardedExecutor this is the `kProjection` / `kFfn` GuardedOp.
  /// Replaces the former `ComputeBackend backend` parameter — see the
  /// DESIGN.md §12 migration table.
  [[nodiscard]] CheckedOp checked_forward(const MatrixD& x,
                                          const KernelContext& context = {}) const;

  /// Rounds the weights and bias through `dtype` in place — the one-time
  /// storage quantization of a frozen layer. Must run BEFORE
  /// input_checksums() is cached: the input-side rowsum(W)/Σb must describe
  /// the weights as stored, else every later compare carries a permanent
  /// quantization offset and false-alarms.
  void quantize(DType dtype);

  /// MACs of one forward (the OpReport cost metric).
  [[nodiscard]] double forward_cost(std::size_t rows) const {
    return double(rows) * double(weight_.rows()) * double(weight_.cols());
  }

  [[nodiscard]] std::size_t in_features() const { return weight_.rows(); }
  [[nodiscard]] std::size_t out_features() const { return weight_.cols(); }

  [[nodiscard]] MatrixD& weight() { return weight_; }
  [[nodiscard]] const MatrixD& weight() const { return weight_; }
  [[nodiscard]] std::vector<double>& bias() { return bias_; }
  [[nodiscard]] const std::vector<double>& bias() const { return bias_; }

  /// The input-side ABFT checksums of the *current* weights: rowsum(W)
  /// and Σb. Owners whose weights are frozen after construction (the
  /// model layers) compute this once and hand it to guarded_linear_batch
  /// on every call — the cache lives with whoever can guarantee it stays
  /// valid, not inside Linear (whose weight()/bias() accessors are
  /// mutable).
  struct InputChecksums {
    std::vector<double> row_w;  ///< rowsum(W), in_features long.
    double bias_sum = 0.0;
  };
  [[nodiscard]] InputChecksums input_checksums() const;

  /// Storage-integrity staleness of `cached` against the live weights: the
  /// max absolute drift of any recomputed rowsum(W) entry or Σb from the
  /// cached copy. Both sides sum the same stored values in the same order,
  /// so a clean layer reads exactly 0.0 at EVERY storage dtype — unlike the
  /// arithmetic checksum compare, whose low-precision threshold must sit
  /// above quantization noise, this check never widens. A resident weight
  /// upset surfaces as its exact delta (the weight scrub's detection
  /// signal).
  [[nodiscard]] double checksum_staleness(const InputChecksums& cached) const;

 private:
  MatrixD weight_;            // in x out
  std::vector<double> bias_;  // out
};

/// Runs one Linear as a guarded op of `kind` — checked, retried on alarm,
/// recomputed as its own fallback on escalation — appending the report(s)
/// to `report` and returning the accepted output. Guarded attempts run on
/// the executor's compute backend; the fallback recomputation always runs
/// kScalar (implementation diversity against a systematically wrong kernel).
///
/// Pass the owner's construction-time `cached` checksums and the first
/// attempt predicts against rowsum(W)/Σb *as built* instead of the live
/// weights — the fix for the fault campaign's legacy weight blind spot: a
/// post-construction weight upset used to re-enter both sides of the
/// compare and stay self-consistent (13.3% detection); against the stale
/// cache it alarms. Retries fall back to live-weight prediction, exactly
/// like `guarded_linear_batch`'s retry path.
[[nodiscard]] MatrixD guarded_linear(
    const Linear& layer, const MatrixD& in, OpKind kind, std::size_t index,
    const GuardedExecutor& executor, LayerReport& report,
    const Linear::InputChecksums* cached = nullptr);

/// The continuous-batching form of `guarded_linear`: ONE stacked product
/// y = [x_1; ...; x_G] W + b — the weight matrix (and its rowsum checksum)
/// streams once per batch instead of once per session — checked *per row
/// group*. The matmul-ABFT identity holds on any row subset, so group g
/// (rows `group_rows[g]` of the stack, one group per session) gets its own
/// pair (predicted = dot(colsum(x_g), rowsum(W)) + rows_g·Σb, actual =
/// Σ y_g), its own GuardedOp run under `executors[g]` (whose tamper hook
/// carries only that session's faults; retries recompute only that group's
/// rows, the escalation fallback recomputes them on kScalar), and its own
/// report appended to `reports[g]`. Protection granularity, fault
/// attribution and recovery semantics are therefore exactly the
/// per-session ones; only the clean-path compute is shared. The scalar
/// product keeps `matmul`'s accumulation order, so per-group outputs are
/// bit-identical to per-session `guarded_linear` calls.
[[nodiscard]] std::vector<MatrixD> guarded_linear_batch(
    const Linear& layer, const MatrixD& x_stacked,
    std::span<const std::size_t> group_rows, OpKind kind, std::size_t index,
    std::span<const GuardedExecutor* const> executors,
    std::span<LayerReport* const> reports,
    const Linear::InputChecksums* cached = nullptr);

}  // namespace flashabft
