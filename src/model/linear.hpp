// Dense (fully-connected) layer: y = x W + b.
//
// Part of the Fig. 1 encoder-layer substrate: the Q/K/V projections, the
// attention output projection and both feed-forward layers are Linear.
#pragma once

#include "tensor/matrix.hpp"
#include "tensor/random.hpp"

namespace flashabft {

/// A dense layer with an in_features x out_features weight and a bias.
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in_features, std::size_t out_features);

  /// Xavier/Glorot-style initialization: W ~ N(0, 1/in_features), b = 0.
  static Linear random_init(std::size_t in_features, std::size_t out_features,
                            Rng& rng);

  /// y = x W + b for a batch of rows (x: n x in_features).
  [[nodiscard]] MatrixD forward(const MatrixD& x) const;

  [[nodiscard]] std::size_t in_features() const { return weight_.rows(); }
  [[nodiscard]] std::size_t out_features() const { return weight_.cols(); }

  [[nodiscard]] MatrixD& weight() { return weight_; }
  [[nodiscard]] const MatrixD& weight() const { return weight_; }
  [[nodiscard]] std::vector<double>& bias() { return bias_; }
  [[nodiscard]] const std::vector<double>& bias() const { return bias_; }

 private:
  MatrixD weight_;            // in x out
  std::vector<double> bias_;  // out
};

}  // namespace flashabft
