// TransformerModel — the protected full-model autoregressive stack.
//
// Embedding → N stacked decoder-only layers (causal self-attention + FFN,
// every checkable op under the GuardedOp regime) → final LayerNorm → tied
// LM head (logits = h · E^T, checked by the classic matmul-ABFT product
// identity with the *same* embedding table the front-end reads). One
// `GuardedExecutor` threads through every layer of a forward; the pass
// reports through a `ModelReport` (per-layer + per-op-kind rollup).
//
// Generation is the serving shape: `prefill` runs the whole prompt once
// (filling the checksummed `KvCache`), then each `decode_step` embeds one
// token at the next position, verifies + extends every layer's cache
// (O(len) per step instead of the O(len^2) full recompute), and produces
// the next-token logits. `forward_full` is the cache-free oracle the
// golden-parity tests compare against.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "core/guarded_op.hpp"
#include "core/kv_cache.hpp"
#include "core/kv_pool.hpp"
#include "model/decoder_layer.hpp"
#include "model/embedding.hpp"
#include "model/layernorm.hpp"
#include "model/model_report.hpp"

namespace flashabft {

/// Shape of the autoregressive model.
struct TransformerConfig {
  std::size_t vocab_size = 256;
  std::size_t model_dim = 64;
  std::size_t num_layers = 2;
  std::size_t num_heads = 2;
  std::size_t head_dim = 32;
  std::size_t ffn_dim = 128;
  /// KV-cache capacity: prompt length + generated tokens must fit.
  std::size_t max_seq_len = 64;
  /// Storage dtype of the whole stack: weights (embedding table,
  /// projections, FFN products) are quantized at construction before any
  /// weight-derived checksum is cached, kernel outputs are rounded at
  /// write-back, and the KV caches this model shapes (make_cache /
  /// make_pool_config) store rounded rows at dtype byte width. kF32 is
  /// bit-identical to the pre-dtype model.
  DType dtype = DType::kF32;
};

/// One forward's logits (last position) and its protected-op report.
struct StepResult {
  std::vector<double> logits;  ///< vocab_size next-token scores.
  std::size_t next_token = 0;  ///< greedy argmax of `logits`.
  ModelReport report;
};

/// A full greedy generation: the produced tokens plus the merged report of
/// the prefill and every decode step.
struct GenerationResult {
  std::vector<std::size_t> tokens;  ///< generated ids (prompt excluded).
  ModelReport report;
};

/// One corruptible weight element of the stack — the fault campaign's
/// weight-subsystem site taxonomy. Drawn uniformly over every element of
/// the embedding table, the per-layer projections and the FFN products.
struct WeightSite {
  enum class Matrix {
    kEmbedding = 0,  ///< shared table: front-end rows + tied LM head.
    kWq,
    kWk,
    kWv,
    kWo,
    kFfn1,
    kFfn2,
  };
  Matrix matrix = Matrix::kEmbedding;
  std::size_t layer = 0;  ///< decoder layer; ignored for kEmbedding.
  std::size_t row = 0;
  std::size_t col = 0;
  double delta = 0.0;
};

[[nodiscard]] const char* weight_matrix_name(WeightSite::Matrix matrix);

class TransformerModel {
 public:
  TransformerModel(const TransformerConfig& cfg, std::uint64_t seed);

  [[nodiscard]] const TransformerConfig& config() const { return cfg_; }
  [[nodiscard]] const Embedding& embedding() const { return embedding_; }
  [[nodiscard]] const DecoderLayer& layer(std::size_t i) const;

  /// Token ids of raw text through the hashed-vocabulary tokenizer.
  [[nodiscard]] std::vector<std::size_t> encode(std::string_view text) const;

  /// An empty cache shaped for this model (num_layers x max_seq_len x
  /// num_heads*head_dim).
  [[nodiscard]] KvCache make_cache() const;

  /// A paged-pool configuration shaped for this model: `page_size`-token
  /// pages, width num_heads*head_dim, one table per layer. `num_pages` = 0
  /// derives the minimum pool that fits `sessions` full-length sessions.
  [[nodiscard]] KvPoolConfig make_pool_config(std::size_t page_size,
                                              std::size_t num_pages,
                                              std::size_t sessions) const;

  /// Full-prompt causal pass that fills `cache` (which must be empty) and
  /// returns the last position's logits — the prefill of a generation
  /// session, and the producer of its first token.
  [[nodiscard]] StepResult prefill(const std::vector<std::size_t>& prompt,
                                   AttentionBackend backend,
                                   const GuardedExecutor& executor,
                                   KvCache& cache) const;

  /// One autoregressive step: embeds `token` at position cache.len(),
  /// verifies + extends every layer's cache, returns next-token logits.
  [[nodiscard]] StepResult decode_step(std::size_t token,
                                       AttentionBackend backend,
                                       const GuardedExecutor& executor,
                                       KvCache& cache) const;

  /// Paged prefill: the same full-prompt causal pass, K/V rows streamed
  /// into the session's pool pages. Also the preemption-resume path —
  /// `tokens` is then prompt + already-generated tokens (minus the last,
  /// still-undecoded one) and the returned logits are discarded. The
  /// session's tables must be empty and pages must have been reserved.
  [[nodiscard]] StepResult prefill_paged(const std::vector<std::size_t>& tokens,
                                         AttentionBackend backend,
                                         const GuardedExecutor& executor,
                                         KvPagePool& pool, PagedKv& kv) const;

  /// Cached prefill: the first `cached` rows of `tokens` were mapped from
  /// the shared-prefix index (`KvPagePool::acquire_prefix`), so only the
  /// suffix runs — one incremental decode step per remaining token, which
  /// PR 3 pinned bit-identical to the full causal pass. The returned
  /// logits/next_token are the last position's; the reports of every
  /// suffix step merge into one. Appends into a shared tail page fork a
  /// private copy inside the pool (copy-on-write), so `cached` may equal
  /// tokens.size() - 1 — the whole-prompt-hit trim.
  [[nodiscard]] StepResult prefill_paged_cached(
      const std::vector<std::size_t>& tokens, std::size_t cached,
      AttentionBackend backend, const GuardedExecutor& executor,
      KvPagePool& pool, PagedKv& kv) const;

  /// One autoregressive step over the paged cache: embeds `token` at
  /// position kv.len(), verifies page contents + mapping and extends every
  /// layer's pages, returns next-token logits.
  [[nodiscard]] StepResult decode_step_paged(std::size_t token,
                                             AttentionBackend backend,
                                             const GuardedExecutor& executor,
                                             KvPagePool& pool,
                                             PagedKv& kv) const;

  /// The continuous-batching sweep: advances every session one token with
  /// a single batched forward pass per layer — the stacked projections,
  /// FFN products and LM head each execute once for the whole batch
  /// (weights and their checksums stream once per layer, not once per
  /// session) while every session keeps its own checksum group, its own
  /// kKvPage verification, its own per-head attention and its own
  /// executor (`executors[i]`, whose tamper hook carries that session's
  /// faults). Results align with the inputs; per-session reports stay
  /// independent for attribution, and scalar outputs are bit-identical to
  /// per-session `decode_step_paged` calls.
  [[nodiscard]] std::vector<StepResult> decode_step_batch(
      std::span<const std::size_t> tokens,
      std::span<const GuardedExecutor* const> executors,
      AttentionBackend backend, KvPagePool& pool,
      std::span<PagedKv* const> kvs) const;

  /// Cache-free full forward: logits at every position (n x vocab_size).
  /// The golden oracle incremental decode must match.
  [[nodiscard]] std::pair<MatrixD, ModelReport> forward_full(
      const std::vector<std::size_t>& tokens, AttentionBackend backend,
      const GuardedExecutor& executor) const;

  /// Greedy generation: prefill + (max_new_tokens - 1) decode steps.
  [[nodiscard]] GenerationResult generate(
      const std::vector<std::size_t>& prompt, std::size_t max_new_tokens,
      AttentionBackend backend, const GuardedExecutor& executor,
      KvCache& cache) const;

  /// The LM head's global kProjection index (num_layers * 4 — past every
  /// layer's Q/K/V/O slots), so tamper hooks can target it unambiguously.
  [[nodiscard]] std::size_t lm_head_index() const {
    return cfg_.num_layers * 4;
  }

  /// Total corruptible weight elements (the WeightSite sample space).
  [[nodiscard]] std::size_t weight_element_count() const;
  /// Draws a uniform element over that space; `delta` is the shift applied.
  [[nodiscard]] WeightSite draw_weight_site(Rng& rng, double delta) const;
  /// Fault injection: shifts the site's element in place. Cached
  /// weight-derived checksums (projection/FFN input checksums, the tied LM
  /// head's colsum) deliberately go stale — paths consuming the caches
  /// alarm on the corruption, paths recomputing from the live weights stay
  /// silently consistent, and the campaign quantifies the split.
  void corrupt_weight(const WeightSite& site);

  [[nodiscard]] static std::size_t argmax(const std::vector<double>& logits);

  /// Worst storage-integrity staleness over EVERY cached weight checksum of
  /// the stack: the tied head's colsum(E) plus each layer's projection and
  /// FFN rowsums. Clean weights read exactly 0.0 at every storage dtype —
  /// both sides re-sum the same stored values in the same order — so the
  /// weight scrub built on this never needs a precision-widened threshold;
  /// a resident upset surfaces as its exact delta.
  [[nodiscard]] double weight_staleness() const;
  /// Elements a full staleness walk re-sums (the scrub op's cost metric).
  [[nodiscard]] double weight_verify_cost() const {
    return double(weight_element_count());
  }

 private:
  /// Final LayerNorm + tied LM head over the last row of `h`; the logits
  /// product is guarded by the matmul-ABFT identity
  /// predicted = dot(colsum(h_last), colsum(E)).
  [[nodiscard]] std::vector<double> lm_head(const MatrixD& h,
                                            const GuardedExecutor& executor,
                                            LayerReport& report) const;

  /// Batched tied LM head: one h_stacked · E^T product (colsum(E) computed
  /// once) with one checksum group — and one OpReport — per row/session.
  [[nodiscard]] std::vector<std::vector<double>> lm_head_batch(
      const MatrixD& h_stacked,
      std::span<const GuardedExecutor* const> executors,
      std::span<LayerReport* const> reports) const;

  /// One row of tied-head logits, out[v] = dot(h_row, E[v]) on `engine` —
  /// the single readout every LM-head path (per-session, batched clean
  /// path, retry/fallback recompute) shares, which is what keeps them
  /// bit-identical.
  void lm_head_row(std::span<const double> h_row, ComputeBackend engine,
                   double* out) const;

  TransformerConfig cfg_;
  Embedding embedding_;
  std::vector<DecoderLayer> layers_;
  LayerNorm final_norm_;
  /// colsum(E) — the tied LM head's input-side checksum. The table never
  /// changes after construction, so it is computed once, not per step.
  std::vector<double> lm_colsum_;
};

/// Guarded weight-integrity scrub, in the same shape as guarded_meta_verify
/// / guarded_page_verify: one kControlPlane op whose residual is the
/// stack's worst checksum staleness. There is no redundant weight copy to
/// repair from, so a resident upset exhausts the retries and is accepted
/// dirty (verdict kAlarm) — detected-uncorrected, the campaign's weights
/// subsystem signal. The compare is exact (clean staleness is 0.0 at every
/// dtype), so the threshold stays at the control-plane floor and detection
/// does NOT degrade under low-precision storage — the arithmetic-checksum
/// path's quantization-widened thresholds are exactly what this scrub
/// compensates for. Returns true iff the weights verified fresh.
[[nodiscard]] bool guarded_weight_verify(const TransformerModel& model,
                                         std::size_t index,
                                         const GuardedExecutor& executor,
                                         LayerReport& report);

}  // namespace flashabft
