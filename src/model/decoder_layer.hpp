// One decoder transformer layer (paper §I: "the decoder consists of two
// self-attention blocks followed by a feed-forward block" — in the standard
// Vaswani architecture, a causally-masked self-attention block and an
// encoder-attending cross-attention block).
//
// Both attention blocks run under Flash-ABFT protection; the checksum
// algebra is mask-agnostic (masked keys simply contribute zero weight to
// both the output and the prediction).
#pragma once

#include "model/gelu.hpp"
#include "model/layernorm.hpp"
#include "model/linear.hpp"
#include "model/multi_head_attention.hpp"

namespace flashabft {

/// Shape of one decoder layer (same fields as the encoder's).
struct DecoderLayerConfig {
  std::size_t model_dim = 512;
  std::size_t num_heads = 8;
  std::size_t head_dim = 64;
  std::size_t ffn_dim = 2048;
};

/// Result of a protected decoder forward pass.
struct DecoderLayerResult {
  MatrixD output;                            ///< n x model_dim.
  std::vector<HeadCheckReport> self_checks;  ///< causal self-attention.
  std::vector<HeadCheckReport> cross_checks; ///< encoder cross-attention.

  [[nodiscard]] bool any_alarm() const {
    for (const HeadCheckReport& r : self_checks) {
      if (r.verdict == CheckVerdict::kAlarm) return true;
    }
    for (const HeadCheckReport& r : cross_checks) {
      if (r.verdict == CheckVerdict::kAlarm) return true;
    }
    return false;
  }
};

/// Post-LN decoder layer:
///   x -> LN(x + CausalSelfAttn(x)) -> LN(. + CrossAttn(., memory))
///     -> LN(. + FFN(.)).
class DecoderLayer {
 public:
  DecoderLayer(const DecoderLayerConfig& cfg, Rng& rng);

  /// Forward pass: `x` are decoder-side embeddings (n x model_dim),
  /// `memory` the encoder output it attends to (n_src x model_dim).
  [[nodiscard]] DecoderLayerResult forward(const MatrixD& x,
                                           const MatrixD& memory,
                                           AttentionBackend backend,
                                           const Checker& checker) const;

  [[nodiscard]] const DecoderLayerConfig& config() const { return cfg_; }

 private:
  DecoderLayerConfig cfg_;
  MultiHeadAttention self_attention_;
  LayerNorm norm1_;
  MultiHeadAttention cross_attention_;
  LayerNorm norm2_;
  Linear ffn1_;
  Linear ffn2_;
  LayerNorm norm3_;
};

}  // namespace flashabft
