// One decoder transformer layer (paper §I: "the decoder consists of two
// self-attention blocks followed by a feed-forward block" — in the standard
// Vaswani architecture, a causally-masked self-attention block and an
// encoder-attending cross-attention block).
//
// Both attention blocks, all eight projections and the FFN run under the
// unified GuardedOp regime; the checksum algebra is mask-agnostic (masked
// keys simply contribute zero weight to both the output and the
// prediction). OpReport indices: self-attention heads 0..H-1 and
// projections 0..3 (block 0), cross-attention heads H..2H-1 and projections
// 4..7 (block 1), FFN products 0 and 1.
//
// The layer also serves as the GPT-style building block of the
// autoregressive `TransformerModel` (`cross_attention = false` in the
// config): `forward_causal` runs self-attention + FFN only (optionally
// filling a KV cache — the prefill pass), and `forward_decode` extends one
// token over a checksummed `KvCacheLayer` in O(len). In those paths every
// op index is offset by `layer_index` (heads layer*H+h, projections
// layer*4+slot, FFN layer*2+{0,1}, cache check layer), so a stacked model's
// report stream stays globally addressable for fault attribution.
#pragma once

#include <optional>

#include "core/guarded_op.hpp"
#include "core/kv_cache.hpp"
#include "model/gelu.hpp"
#include "model/layernorm.hpp"
#include "model/linear.hpp"
#include "model/multi_head_attention.hpp"

namespace flashabft {

/// Shape of one decoder layer (same fields as the encoder's).
struct DecoderLayerConfig {
  std::size_t model_dim = 512;
  std::size_t num_heads = 8;
  std::size_t head_dim = 64;
  std::size_t ffn_dim = 2048;
  /// When false the layer is decoder-only (GPT-style): no cross-attention
  /// weights are drawn and only the causal/decode forwards are usable.
  bool cross_attention = true;
  /// Storage format of the layer's weights: every projection and FFN weight
  /// is quantized at construction, before its input-side checksums are
  /// cached (rowsum(W) must describe the weights as stored).
  DType dtype = DType::kF32;
};

/// Result of a protected decoder forward pass.
struct DecoderLayerResult {
  MatrixD output;      ///< n x model_dim.
  LayerReport report;  ///< self + cross attention, projections, FFN.
};

/// Post-LN decoder layer:
///   x -> LN(x + CausalSelfAttn(x)) -> LN(. + CrossAttn(., memory))
///     -> LN(. + FFN(.)).
class DecoderLayer {
 public:
  DecoderLayer(const DecoderLayerConfig& cfg, Rng& rng);

  /// Forward pass: `x` are decoder-side embeddings (n x model_dim),
  /// `memory` the encoder output it attends to (n_src x model_dim).
  /// Requires `cross_attention` in the config.
  [[nodiscard]] DecoderLayerResult forward(
      const MatrixD& x, const MatrixD& memory, AttentionBackend backend,
      const GuardedExecutor& executor) const;

  /// Decoder-only causal forward: x -> LN(x + CausalSelfAttn(x))
  /// -> LN(. + FFN(.)); the cross-attention block is skipped. When `cache`
  /// is non-null every projected K/V row is appended to it (the prefill
  /// pass of a generation session). `layer_index` offsets every op index.
  [[nodiscard]] DecoderLayerResult forward_causal(
      const MatrixD& x, AttentionBackend backend,
      const GuardedExecutor& executor, std::size_t layer_index = 0,
      KvCacheLayer* cache = nullptr) const;

  /// Causal forward with K/V rows streamed into a paged pool — the prefill
  /// (or preemption-resume re-prefill) pass of a continuous-batching
  /// session. The caller must have reserved pages for x.rows() tokens.
  [[nodiscard]] DecoderLayerResult forward_causal_paged(
      const MatrixD& x, AttentionBackend backend,
      const GuardedExecutor& executor, std::size_t layer_index,
      KvPagePool& pool, PagedKv& kv) const;

  /// Single-token incremental decode over `cache`: verifies the cache's
  /// running checksums (guarded kKvCache op, index = layer_index), appends
  /// the token's K/V, attends over the full cache, then the FFN — the
  /// O(len) decode step.
  [[nodiscard]] DecoderLayerResult forward_decode(
      const MatrixD& x_new, AttentionBackend backend,
      const GuardedExecutor& executor, KvCacheLayer& cache,
      std::size_t layer_index = 0) const;

  /// Single-token incremental decode over the session's *paged* cache:
  /// verifies page contents + page table (guarded kKvPage op, index =
  /// layer_index), appends through the pool, attends over the page list
  /// with the strided paged kernel, then the FFN.
  [[nodiscard]] DecoderLayerResult forward_decode_paged(
      const MatrixD& x_new, AttentionBackend backend,
      const GuardedExecutor& executor, KvPagePool& pool, PagedKv& kv,
      std::size_t layer_index = 0) const;

  /// The continuous-batching sweep of this layer: one token row per
  /// session stacked as B x model_dim. Attention projections and both FFN
  /// products run as single stacked guarded products (per-session checksum
  /// groups — see guarded_linear_batch); page verification, appends and
  /// head attention stay per session. Returns the stacked layer output;
  /// reports append per session.
  [[nodiscard]] MatrixD forward_decode_paged_batch(
      const MatrixD& x_stacked, AttentionBackend backend,
      std::span<const GuardedExecutor* const> executors, KvPagePool& pool,
      std::span<PagedKv* const> kvs, std::size_t layer_index,
      std::span<LayerReport* const> reports) const;

  [[nodiscard]] const DecoderLayerConfig& config() const { return cfg_; }

  /// Fault injection: shifts one element of a self-attention projection
  /// weight (slot {0:Q, 1:K, 2:V, 3:output}) or an FFN product weight
  /// (`which` 0 or 1). Cached input-side checksums deliberately stay stale
  /// — see MultiHeadAttention::corrupt_projection_weight.
  void corrupt_projection_weight(std::size_t slot, std::size_t row,
                                 std::size_t col, double delta);
  void corrupt_ffn_weight(std::size_t which, std::size_t row, std::size_t col,
                          double delta);

  /// Worst storage-integrity staleness over this layer's cached weight
  /// checksums: self-attention (and cross-attention when present)
  /// projections plus both FFN products. 0.0 iff nothing drifted.
  [[nodiscard]] double weight_staleness() const;

 private:
  /// FFN + Add & Norm shared by every forward; `ffn_base` offsets the two
  /// product indices.
  [[nodiscard]] MatrixD ffn_block(const MatrixD& h,
                                  const GuardedExecutor& executor,
                                  std::size_t ffn_base,
                                  LayerReport& report) const;

  DecoderLayerConfig cfg_;
  MultiHeadAttention self_attention_;
  LayerNorm norm1_;
  std::optional<MultiHeadAttention> cross_attention_;
  LayerNorm norm2_;
  Linear ffn1_;
  Linear ffn2_;
  /// Cached input-side ABFT checksums of the frozen FFN weights, for the
  /// batched decode sweep (see MultiHeadAttention::projection_checksums_).
  Linear::InputChecksums ffn1_checksums_;
  Linear::InputChecksums ffn2_checksums_;
  LayerNorm norm3_;
};

}  // namespace flashabft
