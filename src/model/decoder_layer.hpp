// One decoder transformer layer (paper §I: "the decoder consists of two
// self-attention blocks followed by a feed-forward block" — in the standard
// Vaswani architecture, a causally-masked self-attention block and an
// encoder-attending cross-attention block).
//
// Both attention blocks, all eight projections and the FFN run under the
// unified GuardedOp regime; the checksum algebra is mask-agnostic (masked
// keys simply contribute zero weight to both the output and the
// prediction). OpReport indices: self-attention heads 0..H-1 and
// projections 0..3 (block 0), cross-attention heads H..2H-1 and projections
// 4..7 (block 1), FFN products 0 and 1.
#pragma once

#include "core/guarded_op.hpp"
#include "model/gelu.hpp"
#include "model/layernorm.hpp"
#include "model/linear.hpp"
#include "model/multi_head_attention.hpp"

namespace flashabft {

/// Shape of one decoder layer (same fields as the encoder's).
struct DecoderLayerConfig {
  std::size_t model_dim = 512;
  std::size_t num_heads = 8;
  std::size_t head_dim = 64;
  std::size_t ffn_dim = 2048;
};

/// Result of a protected decoder forward pass.
struct DecoderLayerResult {
  MatrixD output;      ///< n x model_dim.
  LayerReport report;  ///< self + cross attention, projections, FFN.
};

/// Post-LN decoder layer:
///   x -> LN(x + CausalSelfAttn(x)) -> LN(. + CrossAttn(., memory))
///     -> LN(. + FFN(.)).
class DecoderLayer {
 public:
  DecoderLayer(const DecoderLayerConfig& cfg, Rng& rng);

  /// Forward pass: `x` are decoder-side embeddings (n x model_dim),
  /// `memory` the encoder output it attends to (n_src x model_dim).
  [[nodiscard]] DecoderLayerResult forward(
      const MatrixD& x, const MatrixD& memory, AttentionBackend backend,
      const GuardedExecutor& executor) const;

  [[nodiscard]] const DecoderLayerConfig& config() const { return cfg_; }

 private:
  DecoderLayerConfig cfg_;
  MultiHeadAttention self_attention_;
  LayerNorm norm1_;
  MultiHeadAttention cross_attention_;
  LayerNorm norm2_;
  Linear ffn1_;
  Linear ffn2_;
  LayerNorm norm3_;
};

}  // namespace flashabft
