#include "model/multi_head_attention.hpp"

#include <cmath>
#include <utility>

#include "attention/flash_attention2.hpp"
#include "attention/reference_attention.hpp"
#include "core/flash_abft.hpp"
#include "core/matmul_abft.hpp"

namespace flashabft {

MultiHeadAttention::MultiHeadAttention(std::size_t model_dim,
                                       std::size_t num_heads,
                                       std::size_t head_dim, Rng& rng)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(head_dim),
      wq_(Linear::random_init(model_dim, num_heads * head_dim, rng)),
      wk_(Linear::random_init(model_dim, num_heads * head_dim, rng)),
      wv_(Linear::random_init(model_dim, num_heads * head_dim, rng)),
      wo_(Linear::random_init(num_heads * head_dim, model_dim, rng)) {
  FLASHABFT_ENSURE_MSG(model_dim == num_heads * head_dim,
                       "model_dim " << model_dim << " != " << num_heads
                                    << " x " << head_dim);
}

namespace {

/// Extracts head h's slice (columns [h*d, (h+1)*d)) of a projected matrix.
MatrixD head_slice(const MatrixD& m, std::size_t head, std::size_t d) {
  MatrixD s(m.rows(), d);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t x = 0; x < d; ++x) s(i, x) = m(i, head * d + x);
  }
  return s;
}

CheckedOp checked_flash_abft(const MatrixD& q, const MatrixD& k,
                             const MatrixD& v, const AttentionConfig& cfg,
                             ComputeBackend backend) {
  FlashAbftOptions options;
  options.backend = backend;
  CheckedAttention run = flash_abft_attention(q, k, v, cfg, options);
  CheckedOp op;
  op.output = std::move(run.output);
  op.check = {run.predicted_checksum, run.actual_checksum};
  return op;
}

double attention_cost(const MatrixD& q, const MatrixD& k) {
  // MACs of QK^T + SV: two n_q x n_k x d products.
  return 2.0 * double(q.rows()) * double(k.rows()) * double(q.cols());
}

}  // namespace

MhaResult MultiHeadAttention::forward(const MatrixD& x,
                                      AttentionBackend backend,
                                      const GuardedExecutor& executor,
                                      AttentionMask mask, std::size_t block,
                                      KvCacheLayer* cache) const {
  return forward_impl(x, x, backend, executor, mask, block, cache);
}

MhaResult MultiHeadAttention::forward_cross(const MatrixD& x_q,
                                            const MatrixD& memory,
                                            AttentionBackend backend,
                                            const GuardedExecutor& executor,
                                            std::size_t block) const {
  return forward_impl(x_q, memory, backend, executor, AttentionMask::kNone,
                      block, nullptr);
}

MatrixD MultiHeadAttention::run_head(const MatrixD& q, const MatrixD& k,
                                     const MatrixD& v,
                                     AttentionBackend backend,
                                     const GuardedExecutor& executor,
                                     const AttentionConfig& cfg,
                                     std::size_t index,
                                     LayerReport& report) const {
  const double cost = attention_cost(q, k);
  const ComputeBackend compute = executor.compute_backend();
  // Escalated heads fall back to a fresh run of the software Alg. 3
  // kernel — the reference engine, verified by its own fused checksum and
  // pinned to the scalar backend (implementation diversity).
  const auto reference_fallback = [&] {
    return checked_flash_abft(q, k, v, cfg, ComputeBackend::kScalar);
  };

  switch (backend) {
    case AttentionBackend::kReference:
      return reference_attention(q, k, v, cfg);
    case AttentionBackend::kFlashAttention2:
      return flash_attention2(q, k, v, cfg);
    case AttentionBackend::kFlashAbft: {
      GuardedOp op = executor.run(
          OpKind::kAttentionFlashAbft, index, cost,
          [&](std::size_t) {
            return checked_flash_abft(q, k, v, cfg, compute);
          },
          reference_fallback);
      MatrixD out = std::move(op.output);
      report.add(std::move(op));
      return out;
    }
    case AttentionBackend::kTwoStepAbft: {
      GuardedOp op = executor.run(
          OpKind::kAttentionTwoStepAbft, index, cost,
          [&](std::size_t) {
            TwoStepAbftAttention run =
                two_step_abft_attention(q, k, v, cfg, compute);
            CheckedOp checked;
            checked.output = std::move(run.output);
            checked.check = {run.qk_check.predicted, run.qk_check.actual};
            checked.extra_checks.push_back(
                {run.sv_check.predicted, run.sv_check.actual});
            return checked;
          },
          reference_fallback);
      MatrixD out = std::move(op.output);
      report.add(std::move(op));
      return out;
    }
  }
  FLASHABFT_ENSURE_MSG(false, "unknown attention backend");
  return {};
}

MhaResult MultiHeadAttention::forward_impl(const MatrixD& x_q,
                                           const MatrixD& x_kv,
                                           AttentionBackend backend,
                                           const GuardedExecutor& executor,
                                           AttentionMask mask,
                                           std::size_t block,
                                           KvCacheLayer* cache) const {
  FLASHABFT_ENSURE(x_q.cols() == model_dim_ && x_kv.cols() == model_dim_);
  const std::size_t n = x_q.rows();
  const std::size_t projection_base = block * 4;
  const std::size_t head_base = block * num_heads_;

  MhaResult result;
  const auto project = [&](const Linear& w, const MatrixD& in,
                           std::size_t slot) {
    return guarded_linear(w, in, OpKind::kProjection, projection_base + slot,
                          executor, result.report);
  };

  const MatrixD q_all = project(wq_, x_q, 0);
  const MatrixD k_all = project(wk_, x_kv, 1);
  const MatrixD v_all = project(wv_, x_kv, 2);

  if (cache != nullptr) {
    // Prefill: every verified K/V row enters the session cache (running
    // checksums and checkpoint mirror updated per append).
    for (std::size_t i = 0; i < x_kv.rows(); ++i) {
      cache->append(k_all.row(i), v_all.row(i));
    }
  }

  AttentionConfig cfg;
  cfg.seq_len = x_kv.rows();
  cfg.head_dim = head_dim_;
  cfg.scale = 1.0 / std::sqrt(double(head_dim_));
  cfg.mask = mask;

  MatrixD concat(n, num_heads_ * head_dim_);
  for (std::size_t h = 0; h < num_heads_; ++h) {
    const MatrixD q = head_slice(q_all, h, head_dim_);
    const MatrixD k = head_slice(k_all, h, head_dim_);
    const MatrixD v = head_slice(v_all, h, head_dim_);
    const MatrixD head_out = run_head(q, k, v, backend, executor, cfg,
                                      head_base + h, result.report);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < head_dim_; ++d) {
        concat(i, h * head_dim_ + d) = head_out(i, d);
      }
    }
  }

  result.output = project(wo_, concat, 3);
  return result;
}

MhaResult MultiHeadAttention::forward_decode(const MatrixD& x_new,
                                             AttentionBackend backend,
                                             const GuardedExecutor& executor,
                                             KvCacheLayer& cache,
                                             std::size_t kv_check_index,
                                             std::size_t block) const {
  FLASHABFT_ENSURE_MSG(x_new.rows() == 1 && x_new.cols() == model_dim_,
                       "decode step takes one token, got "
                           << x_new.rows() << " x " << x_new.cols());
  FLASHABFT_ENSURE_MSG(cache.width() == num_heads_ * head_dim_,
                       "cache width " << cache.width() << " != "
                                      << num_heads_ * head_dim_);
  const std::size_t projection_base = block * 4;
  const std::size_t head_base = block * num_heads_;

  MhaResult result;
  const auto project = [&](const Linear& w, const MatrixD& in,
                           std::size_t slot) {
    return guarded_linear(w, in, OpKind::kProjection, projection_base + slot,
                          executor, result.report);
  };

  // The state this step is about to read was written by earlier steps:
  // verify the cache's running checksums first (restored from the
  // checkpoint on alarm), then extend it with this token's verified row.
  if (cache.len() > 0) {
    guarded_cache_verify(cache, kv_check_index, executor, result.report);
  }

  const MatrixD q_all = project(wq_, x_new, 0);
  const MatrixD k_all = project(wk_, x_new, 1);
  const MatrixD v_all = project(wv_, x_new, 2);
  cache.append(k_all.row(0), v_all.row(0));

  AttentionConfig cfg;
  cfg.seq_len = cache.len();
  cfg.head_dim = head_dim_;
  cfg.scale = 1.0 / std::sqrt(double(head_dim_));
  cfg.mask = AttentionMask::kNone;  // all cached keys are <= this position.

  MatrixD concat(1, num_heads_ * head_dim_);
  for (std::size_t h = 0; h < num_heads_; ++h) {
    const MatrixD q = head_slice(q_all, h, head_dim_);
    const MatrixD k = cache.k_head(h, head_dim_);
    const MatrixD v = cache.v_head(h, head_dim_);
    const MatrixD head_out = run_head(q, k, v, backend, executor, cfg,
                                      head_base + h, result.report);
    for (std::size_t d = 0; d < head_dim_; ++d) {
      concat(0, h * head_dim_ + d) = head_out(0, d);
    }
  }

  result.output = project(wo_, concat, 3);
  return result;
}

}  // namespace flashabft
