#include "model/multi_head_attention.hpp"

#include <cmath>
#include <utility>

#include "attention/flash_attention2.hpp"
#include "attention/reference_attention.hpp"
#include "core/flash_abft.hpp"
#include "core/matmul_abft.hpp"

namespace flashabft {

MultiHeadAttention::MultiHeadAttention(std::size_t model_dim,
                                       std::size_t num_heads,
                                       std::size_t head_dim, Rng& rng,
                                       DType dtype)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(head_dim),
      wq_(Linear::random_init(model_dim, num_heads * head_dim, rng)),
      wk_(Linear::random_init(model_dim, num_heads * head_dim, rng)),
      wv_(Linear::random_init(model_dim, num_heads * head_dim, rng)),
      wo_(Linear::random_init(num_heads * head_dim, model_dim, rng)) {
  FLASHABFT_ENSURE_MSG(model_dim == num_heads * head_dim,
                       "model_dim " << model_dim << " != " << num_heads
                                    << " x " << head_dim);
  // Quantize BEFORE caching the input-side checksums: rowsum(W)/Σb must
  // describe the weights as stored (see header).
  wq_.quantize(dtype);
  wk_.quantize(dtype);
  wv_.quantize(dtype);
  wo_.quantize(dtype);
  projection_checksums_ = {wq_.input_checksums(), wk_.input_checksums(),
                           wv_.input_checksums(), wo_.input_checksums()};
}

void MultiHeadAttention::corrupt_projection_weight(std::size_t slot,
                                                   std::size_t row,
                                                   std::size_t col,
                                                   double delta) {
  FLASHABFT_ENSURE_MSG(slot < 4, "projection slot " << slot << " out of range");
  Linear* projections[4] = {&wq_, &wk_, &wv_, &wo_};
  MatrixD& weight = projections[slot]->weight();
  FLASHABFT_ENSURE(row < weight.rows() && col < weight.cols());
  weight(row, col) += delta;
  // projection_checksums_ deliberately stays stale (see header).
}

double MultiHeadAttention::weight_staleness() const {
  const Linear* projections[4] = {&wq_, &wk_, &wv_, &wo_};
  double worst = 0.0;
  for (std::size_t slot = 0; slot < 4; ++slot) {
    worst = std::max(worst, projections[slot]->checksum_staleness(
                                projection_checksums_[slot]));
  }
  return worst;
}

namespace {

/// Extracts head h's slice (columns [h*d, (h+1)*d)) of a projected matrix.
MatrixD head_slice(const MatrixD& m, std::size_t head, std::size_t d) {
  MatrixD s(m.rows(), d);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t x = 0; x < d; ++x) s(i, x) = m(i, head * d + x);
  }
  return s;
}

CheckedOp checked_flash_abft(const MatrixD& q, const MatrixD& k,
                             const MatrixD& v, const AttentionConfig& cfg,
                             const KernelContext& context) {
  FlashAbftOptions options;
  options.context = context;
  CheckedAttention run = flash_abft_attention(q, k, v, cfg, options);
  CheckedOp op;
  op.output = std::move(run.output);
  op.check = {run.predicted_checksum, run.actual_checksum};
  return op;
}

double attention_cost(const MatrixD& q, const MatrixD& k) {
  // MACs of QK^T + SV: two n_q x n_k x d products.
  return 2.0 * double(q.rows()) * double(k.rows()) * double(q.cols());
}

}  // namespace

MhaResult MultiHeadAttention::forward(const MatrixD& x,
                                      AttentionBackend backend,
                                      const GuardedExecutor& executor,
                                      AttentionMask mask, std::size_t block,
                                      KvCacheLayer* cache) const {
  KvRowSink sink;
  if (cache != nullptr) {
    sink = [cache](std::span<const double> k_row,
                   std::span<const double> v_row) {
      cache->append(k_row, v_row);
    };
  }
  return forward_impl(x, x, backend, executor, mask, block, sink);
}

MhaResult MultiHeadAttention::forward(const MatrixD& x,
                                      AttentionBackend backend,
                                      const GuardedExecutor& executor,
                                      AttentionMask mask, std::size_t block,
                                      const KvRowSink& sink) const {
  return forward_impl(x, x, backend, executor, mask, block, sink);
}

MhaResult MultiHeadAttention::forward_cross(const MatrixD& x_q,
                                            const MatrixD& memory,
                                            AttentionBackend backend,
                                            const GuardedExecutor& executor,
                                            std::size_t block) const {
  return forward_impl(x_q, memory, backend, executor, AttentionMask::kNone,
                      block, KvRowSink{});
}

MatrixD MultiHeadAttention::run_head(const MatrixD& q, const MatrixD& k,
                                     const MatrixD& v,
                                     AttentionBackend backend,
                                     const GuardedExecutor& executor,
                                     const AttentionConfig& cfg,
                                     std::size_t index,
                                     LayerReport& report) const {
  const double cost = attention_cost(q, k);
  const KernelContext context = executor.kernel_context();
  // Escalated heads fall back to a fresh run of the software Alg. 3
  // kernel — the reference engine, verified by its own fused checksum and
  // pinned to the scalar backend (implementation diversity; same storage
  // dtype, so the recomputed output lands in the same regime).
  const auto reference_fallback = [&] {
    return checked_flash_abft(q, k, v, cfg, executor.fallback_context());
  };

  switch (backend) {
    case AttentionBackend::kReference:
      return reference_attention(q, k, v, cfg);
    case AttentionBackend::kFlashAttention2:
      return flash_attention2(q, k, v, cfg);
    case AttentionBackend::kFlashAbft: {
      GuardedOp op = executor.run(
          OpKind::kAttentionFlashAbft, index, cost,
          [&](std::size_t) {
            return checked_flash_abft(q, k, v, cfg, context);
          },
          reference_fallback);
      MatrixD out = std::move(op.output);
      report.add(std::move(op));
      return out;
    }
    case AttentionBackend::kTwoStepAbft: {
      GuardedOp op = executor.run(
          OpKind::kAttentionTwoStepAbft, index, cost,
          [&](std::size_t) {
            TwoStepAbftAttention run =
                two_step_abft_attention(q, k, v, cfg, context);
            CheckedOp checked;
            checked.output = std::move(run.output);
            checked.check = {run.qk_check.predicted, run.qk_check.actual};
            checked.extra_checks.push_back(
                {run.sv_check.predicted, run.sv_check.actual});
            return checked;
          },
          reference_fallback);
      MatrixD out = std::move(op.output);
      report.add(std::move(op));
      return out;
    }
  }
  FLASHABFT_ENSURE_MSG(false, "unknown attention backend");
  return {};
}

MhaResult MultiHeadAttention::forward_impl(const MatrixD& x_q,
                                           const MatrixD& x_kv,
                                           AttentionBackend backend,
                                           const GuardedExecutor& executor,
                                           AttentionMask mask,
                                           std::size_t block,
                                           const KvRowSink& sink) const {
  FLASHABFT_ENSURE(x_q.cols() == model_dim_ && x_kv.cols() == model_dim_);
  const std::size_t n = x_q.rows();
  const std::size_t projection_base = block * 4;
  const std::size_t head_base = block * num_heads_;

  MhaResult result;
  const auto project = [&](const Linear& w, const MatrixD& in,
                           std::size_t slot) {
    // Construction-time checksums: a post-construction weight upset is not
    // self-consistent against them (the legacy weight blind spot fix).
    return guarded_linear(w, in, OpKind::kProjection, projection_base + slot,
                          executor, result.report,
                          &projection_checksums_[slot]);
  };

  const MatrixD q_all = project(wq_, x_q, 0);
  const MatrixD k_all = project(wk_, x_kv, 1);
  const MatrixD v_all = project(wv_, x_kv, 2);

  if (sink) {
    // Prefill: every verified K/V row enters the session cache (running
    // checksums and checkpoint mirror updated per append).
    for (std::size_t i = 0; i < x_kv.rows(); ++i) {
      sink(k_all.row(i), v_all.row(i));
    }
  }

  AttentionConfig cfg;
  cfg.seq_len = x_kv.rows();
  cfg.head_dim = head_dim_;
  cfg.scale = 1.0 / std::sqrt(double(head_dim_));
  cfg.mask = mask;

  MatrixD concat(n, num_heads_ * head_dim_);
  for (std::size_t h = 0; h < num_heads_; ++h) {
    const MatrixD q = head_slice(q_all, h, head_dim_);
    const MatrixD k = head_slice(k_all, h, head_dim_);
    const MatrixD v = head_slice(v_all, h, head_dim_);
    const MatrixD head_out = run_head(q, k, v, backend, executor, cfg,
                                      head_base + h, result.report);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < head_dim_; ++d) {
        concat(i, h * head_dim_ + d) = head_out(i, d);
      }
    }
  }

  result.output = project(wo_, concat, 3);
  return result;
}

MhaResult MultiHeadAttention::forward_decode(const MatrixD& x_new,
                                             AttentionBackend backend,
                                             const GuardedExecutor& executor,
                                             KvCacheLayer& cache,
                                             std::size_t kv_check_index,
                                             std::size_t block) const {
  FLASHABFT_ENSURE_MSG(x_new.rows() == 1 && x_new.cols() == model_dim_,
                       "decode step takes one token, got "
                           << x_new.rows() << " x " << x_new.cols());
  FLASHABFT_ENSURE_MSG(cache.width() == num_heads_ * head_dim_,
                       "cache width " << cache.width() << " != "
                                      << num_heads_ * head_dim_);
  const std::size_t projection_base = block * 4;
  const std::size_t head_base = block * num_heads_;

  MhaResult result;
  const auto project = [&](const Linear& w, const MatrixD& in,
                           std::size_t slot) {
    // Construction-time checksums: a post-construction weight upset is not
    // self-consistent against them (the legacy weight blind spot fix).
    return guarded_linear(w, in, OpKind::kProjection, projection_base + slot,
                          executor, result.report,
                          &projection_checksums_[slot]);
  };

  // The state this step is about to read was written by earlier steps:
  // verify the cache's running checksums first (restored from the
  // checkpoint on alarm), then extend it with this token's verified row.
  if (cache.len() > 0) {
    guarded_cache_verify(cache, kv_check_index, executor, result.report);
  }

  const MatrixD q_all = project(wq_, x_new, 0);
  const MatrixD k_all = project(wk_, x_new, 1);
  const MatrixD v_all = project(wv_, x_new, 2);
  cache.append(k_all.row(0), v_all.row(0));

  AttentionConfig cfg;
  cfg.seq_len = cache.len();
  cfg.head_dim = head_dim_;
  cfg.scale = 1.0 / std::sqrt(double(head_dim_));
  cfg.mask = AttentionMask::kNone;  // all cached keys are <= this position.

  MatrixD concat(1, num_heads_ * head_dim_);
  for (std::size_t h = 0; h < num_heads_; ++h) {
    const MatrixD q = head_slice(q_all, h, head_dim_);
    const MatrixD k = cache.k_head(h, head_dim_);
    const MatrixD v = cache.v_head(h, head_dim_);
    const MatrixD head_out = run_head(q, k, v, backend, executor, cfg,
                                      head_base + h, result.report);
    for (std::size_t d = 0; d < head_dim_; ++d) {
      concat(0, h * head_dim_ + d) = head_out(0, d);
    }
  }

  result.output = project(wo_, concat, 3);
  return result;
}

MatrixD MultiHeadAttention::forward_decode_paged_batch(
    const MatrixD& x_stacked, AttentionBackend backend,
    std::span<const GuardedExecutor* const> executors, KvPagePool& pool,
    std::span<PagedKv* const> kvs, std::size_t layer,
    std::span<LayerReport* const> reports) const {
  const std::size_t batch = x_stacked.rows();
  FLASHABFT_ENSURE_MSG(batch > 0 && x_stacked.cols() == model_dim_,
                       "decode batch is " << batch << " x "
                                          << x_stacked.cols());
  FLASHABFT_ENSURE(executors.size() == batch && kvs.size() == batch &&
                   reports.size() == batch);
  FLASHABFT_ENSURE_MSG(pool.config().width == num_heads_ * head_dim_,
                       "pool width " << pool.config().width << " != "
                                     << num_heads_ * head_dim_);
  FLASHABFT_ENSURE_MSG(backend == AttentionBackend::kFlashAbft,
                       "paged decode serves the Flash-ABFT backend only");
  const std::size_t projection_base = layer * 4;
  const std::size_t head_base = layer * num_heads_;
  const std::size_t width = pool.config().width;
  const std::vector<std::size_t> ones(batch, 1);

  // State written by earlier steps is verified per session first — each
  // through its own executor, so alarms attribute to the right session.
  for (std::size_t s = 0; s < batch; ++s) {
    if (kvs[s]->len(layer) > 0) {
      guarded_page_verify(pool, *kvs[s], layer, /*index=*/layer,
                          *executors[s], *reports[s]);
    }
  }

  const auto project = [&](const Linear& w, const MatrixD& in,
                           std::size_t slot) {
    return guarded_linear_batch(w, in, ones, OpKind::kProjection,
                                projection_base + slot, executors, reports,
                                &projection_checksums_[slot]);
  };
  const std::vector<MatrixD> q_all = project(wq_, x_stacked, 0);
  const std::vector<MatrixD> k_all = project(wk_, x_stacked, 1);
  const std::vector<MatrixD> v_all = project(wv_, x_stacked, 2);
  for (std::size_t s = 0; s < batch; ++s) {
    pool.append(*kvs[s], layer, k_all[s].row(0), v_all[s].row(0));
  }

  const double scale = 1.0 / std::sqrt(double(head_dim_));
  MatrixD concat(batch, num_heads_ * head_dim_);
  for (std::size_t s = 0; s < batch; ++s) {
    const std::vector<KvPagePool::Chunk> pages = pool.chunks(*kvs[s], layer);
    const double cost = 2.0 * double(kvs[s]->len(layer)) * double(head_dim_);
    const KernelContext context = executors[s]->kernel_context();
    for (std::size_t h = 0; h < num_heads_; ++h) {
      const MatrixD q = head_slice(q_all[s], h, head_dim_);
      const auto gather_fallback = [&] {
        AttentionConfig cfg;
        cfg.seq_len = kvs[s]->len(layer);
        cfg.head_dim = head_dim_;
        cfg.scale = scale;
        cfg.mask = AttentionMask::kNone;
        return checked_flash_abft(
            q, pool.gather_k_head(*kvs[s], layer, h, head_dim_),
            pool.gather_v_head(*kvs[s], layer, h, head_dim_), cfg,
            executors[s]->fallback_context());
      };
      GuardedOp op = executors[s]->run(
          OpKind::kAttentionFlashAbft, head_base + h, cost,
          [&](std::size_t) {
            return paged_flash_abft_head(q.row(0), pages, width, h,
                                         head_dim_, scale, context);
          },
          gather_fallback);
      for (std::size_t d = 0; d < head_dim_; ++d) {
        concat(s, h * head_dim_ + d) = op.output(0, d);
      }
      reports[s]->add(std::move(op));
    }
  }

  const std::vector<MatrixD> projected = project(wo_, concat, 3);
  MatrixD out(batch, model_dim_);
  for (std::size_t s = 0; s < batch; ++s) {
    const double* src = projected[s].row(0).data();
    for (std::size_t d = 0; d < model_dim_; ++d) out(s, d) = src[d];
  }
  return out;
}

MhaResult MultiHeadAttention::forward_decode_paged(
    const MatrixD& x_new, AttentionBackend backend,
    const GuardedExecutor& executor, KvPagePool& pool, PagedKv& kv,
    std::size_t layer, std::size_t kv_check_index, std::size_t block) const {
  FLASHABFT_ENSURE_MSG(x_new.rows() == 1 && x_new.cols() == model_dim_,
                       "decode step takes one token, got "
                           << x_new.rows() << " x " << x_new.cols());
  FLASHABFT_ENSURE_MSG(pool.config().width == num_heads_ * head_dim_,
                       "pool width " << pool.config().width << " != "
                                     << num_heads_ * head_dim_);
  FLASHABFT_ENSURE_MSG(backend == AttentionBackend::kFlashAbft,
                       "paged decode serves the Flash-ABFT backend only");
  const std::size_t projection_base = block * 4;
  const std::size_t head_base = block * num_heads_;
  const std::size_t width = pool.config().width;

  MhaResult result;
  const auto project = [&](const Linear& w, const MatrixD& in,
                           std::size_t slot) {
    // Construction-time checksums: a post-construction weight upset is not
    // self-consistent against them (the legacy weight blind spot fix).
    return guarded_linear(w, in, OpKind::kProjection, projection_base + slot,
                          executor, result.report,
                          &projection_checksums_[slot]);
  };

  // The pages (and the mapping about to be walked) were written by earlier
  // steps: verify both first — restored from their checkpoints on alarm —
  // then extend the cache with this token's verified row.
  if (kv.len(layer) > 0) {
    guarded_page_verify(pool, kv, layer, kv_check_index, executor,
                        result.report);
  }

  const MatrixD q_all = project(wq_, x_new, 0);
  const MatrixD k_all = project(wk_, x_new, 1);
  const MatrixD v_all = project(wv_, x_new, 2);
  pool.append(kv, layer, k_all.row(0), v_all.row(0));

  const std::vector<KvPagePool::Chunk> pages = pool.chunks(kv, layer);
  const double scale = 1.0 / std::sqrt(double(head_dim_));
  const double cost =
      2.0 * double(kv.len(layer)) * double(head_dim_);
  const KernelContext context = executor.kernel_context();

  MatrixD concat(1, num_heads_ * head_dim_);
  for (std::size_t h = 0; h < num_heads_; ++h) {
    const MatrixD q = head_slice(q_all, h, head_dim_);
    // Escalated heads gather the pages into contiguous K/V and run the
    // scalar software Alg. 3 kernel — an engine diverse from the strided
    // paged walk, verified by its own fused checksum.
    const auto gather_fallback = [&] {
      AttentionConfig cfg;
      cfg.seq_len = kv.len(layer);
      cfg.head_dim = head_dim_;
      cfg.scale = scale;
      cfg.mask = AttentionMask::kNone;
      return checked_flash_abft(q, pool.gather_k_head(kv, layer, h, head_dim_),
                                pool.gather_v_head(kv, layer, h, head_dim_),
                                cfg, executor.fallback_context());
    };
    GuardedOp op = executor.run(
        OpKind::kAttentionFlashAbft, head_base + h, cost,
        [&](std::size_t) {
          return paged_flash_abft_head(q.row(0), pages, width, h, head_dim_,
                                       scale, context);
        },
        gather_fallback);
    for (std::size_t d = 0; d < head_dim_; ++d) {
      concat(0, h * head_dim_ + d) = op.output(0, d);
    }
    result.report.add(std::move(op));
  }

  result.output = project(wo_, concat, 3);
  return result;
}

}  // namespace flashabft
