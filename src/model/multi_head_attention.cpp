#include "model/multi_head_attention.hpp"

#include <cmath>

#include "attention/flash_attention2.hpp"
#include "attention/reference_attention.hpp"

namespace flashabft {

MultiHeadAttention::MultiHeadAttention(std::size_t model_dim,
                                       std::size_t num_heads,
                                       std::size_t head_dim, Rng& rng)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(head_dim),
      wq_(Linear::random_init(model_dim, num_heads * head_dim, rng)),
      wk_(Linear::random_init(model_dim, num_heads * head_dim, rng)),
      wv_(Linear::random_init(model_dim, num_heads * head_dim, rng)),
      wo_(Linear::random_init(num_heads * head_dim, model_dim, rng)) {
  FLASHABFT_ENSURE_MSG(model_dim == num_heads * head_dim,
                       "model_dim " << model_dim << " != " << num_heads
                                    << " x " << head_dim);
}

namespace {

/// Extracts head h's slice (columns [h*d, (h+1)*d)) of a projected matrix.
MatrixD head_slice(const MatrixD& m, std::size_t head, std::size_t d) {
  MatrixD s(m.rows(), d);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t x = 0; x < d; ++x) s(i, x) = m(i, head * d + x);
  }
  return s;
}

}  // namespace

MhaResult MultiHeadAttention::forward(const MatrixD& x,
                                      AttentionBackend backend,
                                      const Checker& checker,
                                      AttentionMask mask) const {
  return forward_impl(x, x, backend, checker, mask);
}

MhaResult MultiHeadAttention::forward_cross(const MatrixD& x_q,
                                            const MatrixD& memory,
                                            AttentionBackend backend,
                                            const Checker& checker) const {
  return forward_impl(x_q, memory, backend, checker, AttentionMask::kNone);
}

MhaResult MultiHeadAttention::forward_impl(const MatrixD& x_q,
                                           const MatrixD& x_kv,
                                           AttentionBackend backend,
                                           const Checker& checker,
                                           AttentionMask mask) const {
  FLASHABFT_ENSURE(x_q.cols() == model_dim_ && x_kv.cols() == model_dim_);
  const std::size_t n = x_q.rows();

  const MatrixD q_all = wq_.forward(x_q);
  const MatrixD k_all = wk_.forward(x_kv);
  const MatrixD v_all = wv_.forward(x_kv);

  AttentionConfig cfg;
  cfg.seq_len = x_kv.rows();
  cfg.head_dim = head_dim_;
  cfg.scale = 1.0 / std::sqrt(double(head_dim_));
  cfg.mask = mask;

  MhaResult result;
  MatrixD concat(n, num_heads_ * head_dim_);
  for (std::size_t h = 0; h < num_heads_; ++h) {
    const MatrixD q = head_slice(q_all, h, head_dim_);
    const MatrixD k = head_slice(k_all, h, head_dim_);
    const MatrixD v = head_slice(v_all, h, head_dim_);

    MatrixD head_out;
    switch (backend) {
      case AttentionBackend::kReference:
        head_out = reference_attention(q, k, v, cfg);
        break;
      case AttentionBackend::kFlashAttention2:
        head_out = flash_attention2(q, k, v, cfg);
        break;
      case AttentionBackend::kFlashAbft: {
        const CheckedAttention checked = flash_abft_attention(q, k, v, cfg);
        head_out = checked.output;
        HeadCheckReport report;
        report.head = h;
        report.predicted = checked.predicted_checksum;
        report.actual = checked.actual_checksum;
        report.verdict =
            checker.compare(report.predicted, report.actual);
        result.checks.push_back(report);
        break;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < head_dim_; ++d) {
        concat(i, h * head_dim_ + d) = head_out(i, d);
      }
    }
  }
  result.output = wo_.forward(concat);
  return result;
}

}  // namespace flashabft
