// GELU activation (the nonlinearity between the two feed-forward layers of
// the Fig. 1 encoder block).
#pragma once

#include "tensor/matrix.hpp"

namespace flashabft {

/// Exact GELU: x * Phi(x) with the Gaussian CDF via erf.
[[nodiscard]] double gelu(double x);

/// The tanh approximation most accelerators implement.
[[nodiscard]] double gelu_tanh(double x);

/// Element-wise exact GELU over a matrix.
[[nodiscard]] MatrixD gelu_forward(const MatrixD& x);

}  // namespace flashabft
