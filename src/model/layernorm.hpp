// Layer normalization (Fig. 1's "Add & Norm" blocks).
#pragma once

#include "tensor/matrix.hpp"

namespace flashabft {

/// Row-wise layer normalization with learned gain/bias.
class LayerNorm {
 public:
  explicit LayerNorm(std::size_t features, double epsilon = 1e-5);

  /// Normalizes each row to zero mean / unit variance, then applies
  /// gamma/beta.
  [[nodiscard]] MatrixD forward(const MatrixD& x) const;

  [[nodiscard]] std::vector<double>& gamma() { return gamma_; }
  [[nodiscard]] std::vector<double>& beta() { return beta_; }
  [[nodiscard]] std::size_t features() const { return gamma_.size(); }

 private:
  std::vector<double> gamma_;
  std::vector<double> beta_;
  double epsilon_;
};

}  // namespace flashabft
