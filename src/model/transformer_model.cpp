#include "model/transformer_model.hpp"

#include <utility>

#include "common/ensure.hpp"
#include "tensor/tensor_ops.hpp"

namespace flashabft {

namespace {

DecoderLayerConfig layer_config(const TransformerConfig& cfg) {
  DecoderLayerConfig layer;
  layer.model_dim = cfg.model_dim;
  layer.num_heads = cfg.num_heads;
  layer.head_dim = cfg.head_dim;
  layer.ffn_dim = cfg.ffn_dim;
  layer.cross_attention = false;  // GPT-style decoder-only stack.
  return layer;
}

}  // namespace

TransformerModel::TransformerModel(const TransformerConfig& cfg,
                                   std::uint64_t seed)
    : cfg_(cfg),
      embedding_(cfg.vocab_size, cfg.model_dim, seed),
      final_norm_(cfg.model_dim) {
  FLASHABFT_ENSURE_MSG(cfg.model_dim == cfg.num_heads * cfg.head_dim,
                       "model_dim " << cfg.model_dim << " != "
                                    << cfg.num_heads << " x " << cfg.head_dim);
  FLASHABFT_ENSURE_MSG(cfg.num_layers > 0, "model needs at least one layer");
  FLASHABFT_ENSURE_MSG(cfg.max_seq_len > 1, "max_seq_len too small");
  Rng rng(seed + 1);
  layers_.reserve(cfg.num_layers);
  const DecoderLayerConfig layer = layer_config(cfg);
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    layers_.emplace_back(layer, rng);
  }
}

const DecoderLayer& TransformerModel::layer(std::size_t i) const {
  FLASHABFT_ENSURE(i < layers_.size());
  return layers_[i];
}

std::vector<std::size_t> TransformerModel::encode(
    std::string_view text) const {
  return embedding_.token_ids(tokenize(text));
}

KvCache TransformerModel::make_cache() const {
  return KvCache(cfg_.num_layers, cfg_.max_seq_len,
                 cfg_.num_heads * cfg_.head_dim);
}

std::size_t TransformerModel::argmax(const std::vector<double>& logits) {
  FLASHABFT_ENSURE(!logits.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) best = i;
  }
  return best;
}

std::vector<double> TransformerModel::lm_head(
    const MatrixD& h, const GuardedExecutor& executor,
    LayerReport& report) const {
  // Tied head over the last position only: logits = h_last · E^T, checked
  // by the classic product identity. rowsum(E^T) is colsum(E), so
  // predicted = dot(h_last, colsum(E)) — O(dim·vocab) compute, O(dim)
  // checksum prediction.
  const std::size_t last = h.rows() - 1;
  const MatrixD& table = embedding_.table();
  const auto run = [&](ComputeBackend compute) {
    CheckedOp op;
    op.output = MatrixD(1, cfg_.vocab_size);
    const double* h_row = h.row(last).data();
    for (std::size_t v = 0; v < cfg_.vocab_size; ++v) {
      if (compute == ComputeBackend::kSimd) {
        op.output(0, v) = simd::dot(h_row, table.row(v).data(),
                                    cfg_.model_dim);
      } else {
        double dot = 0.0;
        for (std::size_t j = 0; j < cfg_.model_dim; ++j) {
          dot += h(last, j) * table(v, j);
        }
        op.output(0, v) = dot;
      }
    }
    const std::vector<double> col_e = column_sums(table);
    for (std::size_t j = 0; j < cfg_.model_dim; ++j) {
      op.check.predicted += h(last, j) * col_e[j];
    }
    op.check.actual = element_sum(op.output);
    return op;
  };
  GuardedOp op = executor.run(
      OpKind::kProjection, lm_head_index(),
      double(cfg_.model_dim) * double(cfg_.vocab_size),
      [&](std::size_t) { return run(executor.compute_backend()); },
      [&] { return run(ComputeBackend::kScalar); });
  std::vector<double> logits(op.output.row(0).begin(),
                             op.output.row(0).end());
  report.add(std::move(op));
  return logits;
}

StepResult TransformerModel::prefill(const std::vector<std::size_t>& prompt,
                                     AttentionBackend backend,
                                     const GuardedExecutor& executor,
                                     KvCache& cache) const {
  FLASHABFT_ENSURE_MSG(!prompt.empty(), "prefill needs a non-empty prompt");
  FLASHABFT_ENSURE_MSG(prompt.size() <= cfg_.max_seq_len,
                       "prompt of " << prompt.size() << " tokens exceeds "
                                    << cfg_.max_seq_len);
  FLASHABFT_ENSURE_MSG(cache.len() == 0, "prefill needs an empty cache");
  FLASHABFT_ENSURE(cache.num_layers() == cfg_.num_layers);

  StepResult result;
  MatrixD x = embedding_.embed_ids(prompt, /*start_pos=*/0);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    DecoderLayerResult out = layers_[l].forward_causal(
        x, backend, executor, /*layer_index=*/l, &cache.layer(l));
    x = std::move(out.output);
    result.report.add_layer(std::move(out.report));
  }
  const MatrixD h = final_norm_.forward(x);
  result.logits = lm_head(h, executor, result.report.final_ops);
  result.next_token = argmax(result.logits);
  return result;
}

StepResult TransformerModel::decode_step(std::size_t token,
                                         AttentionBackend backend,
                                         const GuardedExecutor& executor,
                                         KvCache& cache) const {
  const std::size_t pos = cache.len();
  FLASHABFT_ENSURE_MSG(pos > 0, "decode before prefill");
  FLASHABFT_ENSURE_MSG(pos < cfg_.max_seq_len,
                       "cache full at " << pos << " tokens");

  StepResult result;
  const std::size_t ids[1] = {token};
  MatrixD x = embedding_.embed_ids(ids, /*start_pos=*/pos);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    DecoderLayerResult out = layers_[l].forward_decode(
        x, backend, executor, cache.layer(l), /*layer_index=*/l);
    x = std::move(out.output);
    result.report.add_layer(std::move(out.report));
  }
  const MatrixD h = final_norm_.forward(x);
  result.logits = lm_head(h, executor, result.report.final_ops);
  result.next_token = argmax(result.logits);
  return result;
}

std::pair<MatrixD, ModelReport> TransformerModel::forward_full(
    const std::vector<std::size_t>& tokens, AttentionBackend backend,
    const GuardedExecutor& executor) const {
  FLASHABFT_ENSURE(!tokens.empty());
  ModelReport report;
  MatrixD x = embedding_.embed_ids(tokens, /*start_pos=*/0);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    DecoderLayerResult out =
        layers_[l].forward_causal(x, backend, executor, /*layer_index=*/l);
    x = std::move(out.output);
    report.add_layer(std::move(out.report));
  }
  const MatrixD h = final_norm_.forward(x);
  // Oracle logits at every position (unguarded: the golden path).
  MatrixD logits(h.rows(), cfg_.vocab_size);
  const MatrixD& table = embedding_.table();
  for (std::size_t i = 0; i < h.rows(); ++i) {
    for (std::size_t v = 0; v < cfg_.vocab_size; ++v) {
      double dot = 0.0;
      for (std::size_t j = 0; j < cfg_.model_dim; ++j) {
        dot += h(i, j) * table(v, j);
      }
      logits(i, v) = dot;
    }
  }
  return {std::move(logits), std::move(report)};
}

GenerationResult TransformerModel::generate(
    const std::vector<std::size_t>& prompt, std::size_t max_new_tokens,
    AttentionBackend backend, const GuardedExecutor& executor,
    KvCache& cache) const {
  FLASHABFT_ENSURE_MSG(max_new_tokens > 0, "nothing to generate");
  FLASHABFT_ENSURE_MSG(prompt.size() + max_new_tokens <= cfg_.max_seq_len,
                       "prompt " << prompt.size() << " + " << max_new_tokens
                                 << " new tokens exceeds max_seq_len "
                                 << cfg_.max_seq_len);
  GenerationResult result;
  StepResult step = prefill(prompt, backend, executor, cache);
  result.tokens.push_back(step.next_token);
  result.report.merge(std::move(step.report));
  while (result.tokens.size() < max_new_tokens) {
    step = decode_step(result.tokens.back(), backend, executor, cache);
    result.tokens.push_back(step.next_token);
    result.report.merge(std::move(step.report));
  }
  return result;
}

}  // namespace flashabft
