#include "model/transformer_model.hpp"

#include <algorithm>
#include <utility>

#include "common/ensure.hpp"
#include "core/meta_guard.hpp"
#include "tensor/tensor_ops.hpp"

namespace flashabft {

namespace {

DecoderLayerConfig layer_config(const TransformerConfig& cfg) {
  DecoderLayerConfig layer;
  layer.model_dim = cfg.model_dim;
  layer.num_heads = cfg.num_heads;
  layer.head_dim = cfg.head_dim;
  layer.ffn_dim = cfg.ffn_dim;
  layer.cross_attention = false;  // GPT-style decoder-only stack.
  layer.dtype = cfg.dtype;
  return layer;
}

}  // namespace

TransformerModel::TransformerModel(const TransformerConfig& cfg,
                                   std::uint64_t seed)
    : cfg_(cfg),
      embedding_(cfg.vocab_size, cfg.model_dim, seed),
      final_norm_(cfg.model_dim) {
  FLASHABFT_ENSURE_MSG(cfg.model_dim == cfg.num_heads * cfg.head_dim,
                       "model_dim " << cfg.model_dim << " != "
                                    << cfg.num_heads << " x " << cfg.head_dim);
  FLASHABFT_ENSURE_MSG(cfg.num_layers > 0, "model needs at least one layer");
  FLASHABFT_ENSURE_MSG(cfg.max_seq_len > 1, "max_seq_len too small");
  Rng rng(seed + 1);
  layers_.reserve(cfg.num_layers);
  const DecoderLayerConfig layer = layer_config(cfg);
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    layers_.emplace_back(layer, rng);
  }
  // Quantize the shared table BEFORE caching the tied head's colsum(E):
  // the input-side checksum must describe the table as stored.
  embedding_.quantize(cfg.dtype);
  lm_colsum_ = column_sums(embedding_.table());
}

const DecoderLayer& TransformerModel::layer(std::size_t i) const {
  FLASHABFT_ENSURE(i < layers_.size());
  return layers_[i];
}

const char* weight_matrix_name(WeightSite::Matrix matrix) {
  switch (matrix) {
    case WeightSite::Matrix::kEmbedding: return "embedding";
    case WeightSite::Matrix::kWq: return "wq";
    case WeightSite::Matrix::kWk: return "wk";
    case WeightSite::Matrix::kWv: return "wv";
    case WeightSite::Matrix::kWo: return "wo";
    case WeightSite::Matrix::kFfn1: return "ffn1";
    case WeightSite::Matrix::kFfn2: return "ffn2";
  }
  return "?";
}

std::size_t TransformerModel::weight_element_count() const {
  const std::size_t projections = 4 * cfg_.model_dim * cfg_.model_dim;
  const std::size_t ffn = 2 * cfg_.model_dim * cfg_.ffn_dim;
  return cfg_.vocab_size * cfg_.model_dim +
         cfg_.num_layers * (projections + ffn);
}

WeightSite TransformerModel::draw_weight_site(Rng& rng, double delta) const {
  WeightSite site;
  site.delta = delta;
  std::size_t pick = std::size_t(rng.next_below(weight_element_count()));
  const std::size_t embedding = cfg_.vocab_size * cfg_.model_dim;
  if (pick < embedding) {
    site.matrix = WeightSite::Matrix::kEmbedding;
    site.row = pick / cfg_.model_dim;
    site.col = pick % cfg_.model_dim;
    return site;
  }
  pick -= embedding;
  const std::size_t proj = cfg_.model_dim * cfg_.model_dim;
  const std::size_t ffn = cfg_.model_dim * cfg_.ffn_dim;
  const std::size_t per_layer = 4 * proj + 2 * ffn;
  site.layer = pick / per_layer;
  pick %= per_layer;
  if (pick < 4 * proj) {
    const std::size_t slot = pick / proj;
    site.matrix = WeightSite::Matrix(std::size_t(WeightSite::Matrix::kWq) +
                                     slot);
    pick %= proj;
    site.row = pick / cfg_.model_dim;
    site.col = pick % cfg_.model_dim;
    return site;
  }
  pick -= 4 * proj;
  if (pick < ffn) {
    // ffn1 is model_dim x ffn_dim.
    site.matrix = WeightSite::Matrix::kFfn1;
    site.row = pick / cfg_.ffn_dim;
    site.col = pick % cfg_.ffn_dim;
  } else {
    // ffn2 is ffn_dim x model_dim.
    pick -= ffn;
    site.matrix = WeightSite::Matrix::kFfn2;
    site.row = pick / cfg_.model_dim;
    site.col = pick % cfg_.model_dim;
  }
  return site;
}

void TransformerModel::corrupt_weight(const WeightSite& site) {
  switch (site.matrix) {
    case WeightSite::Matrix::kEmbedding:
      // lm_colsum_ deliberately stays stale (see header).
      embedding_.corrupt(site.row, site.col, site.delta);
      return;
    case WeightSite::Matrix::kWq:
    case WeightSite::Matrix::kWk:
    case WeightSite::Matrix::kWv:
    case WeightSite::Matrix::kWo: {
      FLASHABFT_ENSURE(site.layer < layers_.size());
      const std::size_t slot = std::size_t(site.matrix) -
                               std::size_t(WeightSite::Matrix::kWq);
      layers_[site.layer].corrupt_projection_weight(slot, site.row, site.col,
                                                    site.delta);
      return;
    }
    case WeightSite::Matrix::kFfn1:
    case WeightSite::Matrix::kFfn2:
      FLASHABFT_ENSURE(site.layer < layers_.size());
      layers_[site.layer].corrupt_ffn_weight(
          site.matrix == WeightSite::Matrix::kFfn1 ? 0 : 1, site.row,
          site.col, site.delta);
      return;
  }
}

double TransformerModel::weight_staleness() const {
  // Tied head: recompute colsum(E) over the stored table — bit-identical
  // to the construction-time pass when nothing drifted.
  const std::vector<double> live = column_sums(embedding_.table());
  double worst = 0.0;
  const std::size_t n = std::min(live.size(), lm_colsum_.size());
  for (std::size_t j = 0; j < n; ++j) {
    worst = std::max(worst, std::abs(live[j] - lm_colsum_[j]));
  }
  for (const DecoderLayer& layer : layers_) {
    worst = std::max(worst, layer.weight_staleness());
  }
  return worst;
}

bool guarded_weight_verify(const TransformerModel& model, std::size_t index,
                           const GuardedExecutor& executor,
                           LayerReport& report) {
  GuardedOp op = executor.run(
      OpKind::kControlPlane, index, model.weight_verify_cost(),
      [&](std::size_t) {
        CheckedOp checked;
        checked.output = MatrixD(1, 1);
        const double staleness = model.weight_staleness();
        // Exact compare against the cached checksums; the pair carries the
        // staleness so the OpReport's residual is the observed drift. Any
        // nonzero drift alarms: verify re-runs the construction-time sums
        // over the same stored values in the same order, so a clean stack
        // reads exactly 0.0 — an ECC-style integrity check, not a rounding
        // comparator, and the reason it needs no dtype-widened threshold.
        checked.check = {staleness, 0.0};
        checked.self_verdict = staleness > 0.0 ? CheckVerdict::kAlarm
                                               : CheckVerdict::kPass;
        return checked;
      });
  const bool clean = op.report.verdict == CheckVerdict::kPass;
  report.add(std::move(op));
  return clean;
}

std::vector<std::size_t> TransformerModel::encode(
    std::string_view text) const {
  return embedding_.token_ids(tokenize(text));
}

KvCache TransformerModel::make_cache() const {
  return KvCache(cfg_.num_layers, cfg_.max_seq_len,
                 cfg_.num_heads * cfg_.head_dim, cfg_.dtype);
}

KvPoolConfig TransformerModel::make_pool_config(std::size_t page_size,
                                                std::size_t num_pages,
                                                std::size_t sessions) const {
  KvPoolConfig pool;
  pool.page_size = page_size;
  pool.width = cfg_.num_heads * cfg_.head_dim;
  pool.num_layers = cfg_.num_layers;
  pool.dtype = cfg_.dtype;
  const std::size_t per_session =
      cfg_.num_layers * ((cfg_.max_seq_len + page_size - 1) / page_size);
  pool.num_pages =
      num_pages > 0 ? num_pages : std::max<std::size_t>(1, sessions) *
                                      per_session;
  // Progress guarantee: the oldest session is never preempted, so the pool
  // must at least fit one full-length session.
  FLASHABFT_ENSURE_MSG(pool.num_pages >= per_session,
                       "pool of " << pool.num_pages << " pages cannot hold "
                                  << "one max_seq_len session ("
                                  << per_session << " pages)");
  return pool;
}

std::size_t TransformerModel::argmax(const std::vector<double>& logits) {
  FLASHABFT_ENSURE(!logits.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) best = i;
  }
  return best;
}

void TransformerModel::lm_head_row(std::span<const double> h_row,
                                   ComputeBackend engine,
                                   double* out) const {
  const MatrixD& table = embedding_.table();
  for (std::size_t v = 0; v < cfg_.vocab_size; ++v) {
    if (engine == ComputeBackend::kSimd) {
      out[v] = simd::dot(h_row.data(), table.row(v).data(), cfg_.model_dim);
    } else {
      double dot = 0.0;
      const double* t_row = table.row(v).data();
      for (std::size_t j = 0; j < cfg_.model_dim; ++j) {
        dot += h_row[j] * t_row[j];
      }
      out[v] = dot;
    }
  }
}

std::vector<double> TransformerModel::lm_head(
    const MatrixD& h, const GuardedExecutor& executor,
    LayerReport& report) const {
  // Tied head over the last position only: logits = h_last · E^T, checked
  // by the classic product identity. rowsum(E^T) is colsum(E), so
  // predicted = dot(h_last, colsum(E)) — O(dim·vocab) compute, O(dim)
  // checksum prediction.
  const std::size_t last = h.rows() - 1;
  const auto run = [&](const KernelContext& context) {
    CheckedOp op;
    op.output = MatrixD(1, cfg_.vocab_size);
    lm_head_row(h.row(last), context.backend, op.output.row(0).data());
    // Storage write-back: logits are stored in context.dtype and the
    // actual checksum sums the stored values (predicted stays wide).
    dtype_round_span(op.output.row(0), context.dtype);
    for (std::size_t j = 0; j < cfg_.model_dim; ++j) {
      op.check.predicted += h(last, j) * lm_colsum_[j];
    }
    op.check.actual = element_sum(op.output);
    return op;
  };
  GuardedOp op = executor.run(
      OpKind::kProjection, lm_head_index(),
      double(cfg_.model_dim) * double(cfg_.vocab_size),
      [&](std::size_t) { return run(executor.kernel_context()); },
      [&] { return run(executor.fallback_context()); });
  std::vector<double> logits(op.output.row(0).begin(),
                             op.output.row(0).end());
  report.add(std::move(op));
  return logits;
}

StepResult TransformerModel::prefill(const std::vector<std::size_t>& prompt,
                                     AttentionBackend backend,
                                     const GuardedExecutor& executor,
                                     KvCache& cache) const {
  FLASHABFT_ENSURE_MSG(!prompt.empty(), "prefill needs a non-empty prompt");
  FLASHABFT_ENSURE_MSG(prompt.size() <= cfg_.max_seq_len,
                       "prompt of " << prompt.size() << " tokens exceeds "
                                    << cfg_.max_seq_len);
  FLASHABFT_ENSURE_MSG(cache.len() == 0, "prefill needs an empty cache");
  FLASHABFT_ENSURE(cache.num_layers() == cfg_.num_layers);

  StepResult result;
  MatrixD x = embedding_.embed_ids(prompt, /*start_pos=*/0);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    DecoderLayerResult out = layers_[l].forward_causal(
        x, backend, executor, /*layer_index=*/l, &cache.layer(l));
    x = std::move(out.output);
    result.report.add_layer(std::move(out.report));
  }
  const MatrixD h = dmr_guard(
      executor, /*index=*/layers_.size(),
      double(x.rows()) * double(cfg_.model_dim),
      [&] { return final_norm_.forward(x); }, result.report.final_ops);
  result.logits = lm_head(h, executor, result.report.final_ops);
  result.next_token = argmax(result.logits);
  return result;
}

StepResult TransformerModel::decode_step(std::size_t token,
                                         AttentionBackend backend,
                                         const GuardedExecutor& executor,
                                         KvCache& cache) const {
  const std::size_t pos = cache.len();
  FLASHABFT_ENSURE_MSG(pos > 0, "decode before prefill");
  FLASHABFT_ENSURE_MSG(pos < cfg_.max_seq_len,
                       "cache full at " << pos << " tokens");

  StepResult result;
  const std::size_t ids[1] = {token};
  MatrixD x = embedding_.embed_ids(ids, /*start_pos=*/pos);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    DecoderLayerResult out = layers_[l].forward_decode(
        x, backend, executor, cache.layer(l), /*layer_index=*/l);
    x = std::move(out.output);
    result.report.add_layer(std::move(out.report));
  }
  const MatrixD h = dmr_guard(
      executor, /*index=*/layers_.size(),
      double(x.rows()) * double(cfg_.model_dim),
      [&] { return final_norm_.forward(x); }, result.report.final_ops);
  result.logits = lm_head(h, executor, result.report.final_ops);
  result.next_token = argmax(result.logits);
  return result;
}

StepResult TransformerModel::prefill_paged(
    const std::vector<std::size_t>& tokens, AttentionBackend backend,
    const GuardedExecutor& executor, KvPagePool& pool, PagedKv& kv) const {
  FLASHABFT_ENSURE_MSG(!tokens.empty(), "prefill needs a non-empty prompt");
  FLASHABFT_ENSURE_MSG(tokens.size() <= cfg_.max_seq_len,
                       "prompt of " << tokens.size() << " tokens exceeds "
                                    << cfg_.max_seq_len);
  FLASHABFT_ENSURE_MSG(kv.len() == 0, "prefill needs an empty paged cache");
  FLASHABFT_ENSURE(kv.num_layers() == cfg_.num_layers);

  StepResult result;
  MatrixD x = embedding_.embed_ids(tokens, /*start_pos=*/0);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    DecoderLayerResult out = layers_[l].forward_causal_paged(
        x, backend, executor, /*layer_index=*/l, pool, kv);
    x = std::move(out.output);
    result.report.add_layer(std::move(out.report));
  }
  const MatrixD h = dmr_guard(
      executor, /*index=*/layers_.size(),
      double(x.rows()) * double(cfg_.model_dim),
      [&] { return final_norm_.forward(x); }, result.report.final_ops);
  result.logits = lm_head(h, executor, result.report.final_ops);
  result.next_token = argmax(result.logits);
  return result;
}

StepResult TransformerModel::prefill_paged_cached(
    const std::vector<std::size_t>& tokens, std::size_t cached,
    AttentionBackend backend, const GuardedExecutor& executor,
    KvPagePool& pool, PagedKv& kv) const {
  FLASHABFT_ENSURE_MSG(cached >= 1 && cached < tokens.size(),
                       "cached prefix of " << cached << " rows needs 1 <= "
                                           << cached << " < "
                                           << tokens.size());
  FLASHABFT_ENSURE_MSG(tokens.size() <= cfg_.max_seq_len,
                       "prompt of " << tokens.size() << " tokens exceeds "
                                    << cfg_.max_seq_len);
  FLASHABFT_ENSURE_MSG(kv.len() == cached,
                       "cached prefill expects " << cached
                                                 << " mapped rows, cache has "
                                                 << kv.len());
  // Incremental == full-causal was pinned bit-identical in PR 3, so the
  // suffix steps reproduce exactly the state a private prefill would have
  // built — including the trimmed-away last prompt row of a whole-prompt
  // hit, whose re-append forks the shared tail via copy-on-write.
  StepResult result =
      decode_step_paged(tokens[cached], backend, executor, pool, kv);
  for (std::size_t i = cached + 1; i < tokens.size(); ++i) {
    StepResult step =
        decode_step_paged(tokens[i], backend, executor, pool, kv);
    result.report.merge(std::move(step.report));
    result.logits = std::move(step.logits);
    result.next_token = step.next_token;
  }
  return result;
}

StepResult TransformerModel::decode_step_paged(
    std::size_t token, AttentionBackend backend,
    const GuardedExecutor& executor, KvPagePool& pool, PagedKv& kv) const {
  const std::size_t pos = kv.len();
  FLASHABFT_ENSURE_MSG(pos > 0, "decode before prefill");
  FLASHABFT_ENSURE_MSG(pos < cfg_.max_seq_len,
                       "cache full at " << pos << " tokens");

  StepResult result;
  const std::size_t ids[1] = {token};
  MatrixD x = embedding_.embed_ids(ids, /*start_pos=*/pos);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    DecoderLayerResult out = layers_[l].forward_decode_paged(
        x, backend, executor, pool, kv, /*layer_index=*/l);
    x = std::move(out.output);
    result.report.add_layer(std::move(out.report));
  }
  const MatrixD h = dmr_guard(
      executor, /*index=*/layers_.size(),
      double(x.rows()) * double(cfg_.model_dim),
      [&] { return final_norm_.forward(x); }, result.report.final_ops);
  result.logits = lm_head(h, executor, result.report.final_ops);
  result.next_token = argmax(result.logits);
  return result;
}

std::vector<std::vector<double>> TransformerModel::lm_head_batch(
    const MatrixD& h_stacked,
    std::span<const GuardedExecutor* const> executors,
    std::span<LayerReport* const> reports) const {
  const std::size_t batch = h_stacked.rows();
  const KernelContext context = executors.front()->kernel_context();

  // One stacked logits product; the tied table (and colsum(E)) stream once
  // per batch. Row readout shared with the per-session lm_head, followed by
  // the same storage write-back rounding.
  MatrixD y(batch, cfg_.vocab_size);
  for (std::size_t s = 0; s < batch; ++s) {
    lm_head_row(h_stacked.row(s), context.backend, y.row(s).data());
    dtype_round_span(y.row(s), context.dtype);
  }
  const std::vector<double>& col_e = lm_colsum_;

  // Per-session recomputation engine for retries/fallback: the same
  // single-row run the non-batched lm_head uses.
  const auto run_one = [&](std::size_t s, const KernelContext& engine) {
    CheckedOp op;
    op.output = MatrixD(1, cfg_.vocab_size);
    lm_head_row(h_stacked.row(s), engine.backend, op.output.row(0).data());
    dtype_round_span(op.output.row(0), engine.dtype);
    const double* h_row = h_stacked.row(s).data();
    for (std::size_t j = 0; j < cfg_.model_dim; ++j) {
      op.check.predicted += h_row[j] * col_e[j];
    }
    op.check.actual = element_sum(op.output);
    return op;
  };

  std::vector<std::vector<double>> logits(batch);
  for (std::size_t s = 0; s < batch; ++s) {
    CheckedOp first;
    first.output = MatrixD(1, cfg_.vocab_size);
    const double* y_row = y.row(s).data();
    for (std::size_t v = 0; v < cfg_.vocab_size; ++v) {
      first.output(0, v) = y_row[v];
      first.check.actual += y_row[v];
    }
    const double* h_row = h_stacked.row(s).data();
    for (std::size_t j = 0; j < cfg_.model_dim; ++j) {
      first.check.predicted += h_row[j] * col_e[j];
    }
    GuardedOp op = executors[s]->run(
        OpKind::kProjection, lm_head_index(),
        double(cfg_.model_dim) * double(cfg_.vocab_size),
        [&](std::size_t attempt) {
          if (attempt == 0) return std::move(first);
          return run_one(s, context);
        },
        [&] { return run_one(s, executors[s]->fallback_context()); });
    logits[s].assign(op.output.row(0).begin(), op.output.row(0).end());
    reports[s]->add(std::move(op));
  }
  return logits;
}

std::vector<StepResult> TransformerModel::decode_step_batch(
    std::span<const std::size_t> tokens,
    std::span<const GuardedExecutor* const> executors,
    AttentionBackend backend, KvPagePool& pool,
    std::span<PagedKv* const> kvs) const {
  const std::size_t batch = tokens.size();
  FLASHABFT_ENSURE_MSG(batch > 0, "empty decode batch");
  FLASHABFT_ENSURE(executors.size() == batch && kvs.size() == batch);

  std::vector<StepResult> results(batch);
  MatrixD x(batch, cfg_.model_dim);
  for (std::size_t s = 0; s < batch; ++s) {
    const std::size_t pos = kvs[s]->len();
    FLASHABFT_ENSURE_MSG(pos > 0, "decode before prefill");
    FLASHABFT_ENSURE_MSG(pos < cfg_.max_seq_len,
                         "cache full at " << pos << " tokens");
    const std::size_t ids[1] = {tokens[s]};
    const MatrixD row = embedding_.embed_ids(ids, /*start_pos=*/pos);
    for (std::size_t d = 0; d < cfg_.model_dim; ++d) x(s, d) = row(0, d);
  }

  // One batched sweep per layer: the whole batch crosses layer l in a
  // single stacked forward before any session touches layer l+1. Each
  // session's reports accumulate into a per-layer LayerReport so the
  // ModelReport keeps the same per-layer attribution as the single path.
  std::vector<std::vector<LayerReport>> layer_reports(
      batch, std::vector<LayerReport>(layers_.size()));
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    std::vector<LayerReport*> reports;
    reports.reserve(batch);
    for (std::size_t s = 0; s < batch; ++s) {
      reports.push_back(&layer_reports[s][l]);
    }
    x = layers_[l].forward_decode_paged_batch(x, backend, executors, pool,
                                              kvs, /*layer_index=*/l,
                                              reports);
  }
  for (std::size_t s = 0; s < batch; ++s) {
    for (LayerReport& report : layer_reports[s]) {
      results[s].report.add_layer(std::move(report));
    }
  }

  // One DMR pair over the stacked final norm, attributed to the first
  // session's stream (same policy as the batched layer glue).
  const MatrixD h = dmr_guard(
      *executors.front(), /*index=*/layers_.size(),
      double(x.rows()) * double(cfg_.model_dim),
      [&] { return final_norm_.forward(x); },
      results.front().report.final_ops);
  std::vector<LayerReport*> final_reports;
  final_reports.reserve(batch);
  for (std::size_t s = 0; s < batch; ++s) {
    final_reports.push_back(&results[s].report.final_ops);
  }
  std::vector<std::vector<double>> logits =
      lm_head_batch(h, executors, final_reports);
  for (std::size_t s = 0; s < batch; ++s) {
    results[s].logits = std::move(logits[s]);
    results[s].next_token = argmax(results[s].logits);
  }
  return results;
}

std::pair<MatrixD, ModelReport> TransformerModel::forward_full(
    const std::vector<std::size_t>& tokens, AttentionBackend backend,
    const GuardedExecutor& executor) const {
  FLASHABFT_ENSURE(!tokens.empty());
  ModelReport report;
  MatrixD x = embedding_.embed_ids(tokens, /*start_pos=*/0);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    DecoderLayerResult out =
        layers_[l].forward_causal(x, backend, executor, /*layer_index=*/l);
    x = std::move(out.output);
    report.add_layer(std::move(out.report));
  }
  const MatrixD h = final_norm_.forward(x);
  // Oracle logits at every position (unguarded: the golden path).
  MatrixD logits(h.rows(), cfg_.vocab_size);
  const MatrixD& table = embedding_.table();
  for (std::size_t i = 0; i < h.rows(); ++i) {
    for (std::size_t v = 0; v < cfg_.vocab_size; ++v) {
      double dot = 0.0;
      for (std::size_t j = 0; j < cfg_.model_dim; ++j) {
        dot += h(i, j) * table(v, j);
      }
      logits(i, v) = dot;
    }
  }
  return {std::move(logits), std::move(report)};
}

GenerationResult TransformerModel::generate(
    const std::vector<std::size_t>& prompt, std::size_t max_new_tokens,
    AttentionBackend backend, const GuardedExecutor& executor,
    KvCache& cache) const {
  FLASHABFT_ENSURE_MSG(max_new_tokens > 0, "nothing to generate");
  FLASHABFT_ENSURE_MSG(prompt.size() + max_new_tokens <= cfg_.max_seq_len,
                       "prompt " << prompt.size() << " + " << max_new_tokens
                                 << " new tokens exceeds max_seq_len "
                                 << cfg_.max_seq_len);
  GenerationResult result;
  StepResult step = prefill(prompt, backend, executor, cache);
  result.tokens.push_back(step.next_token);
  result.report.merge(std::move(step.report));
  while (result.tokens.size() < max_new_tokens) {
    step = decode_step(result.tokens.back(), backend, executor, cache);
    result.tokens.push_back(step.next_token);
    result.report.merge(std::move(step.report));
  }
  return result;
}

}  // namespace flashabft
