// Multi-head attention under the unified GuardedOp protection regime.
//
// Realizes the attention block of Fig. 1: the input embedding is projected
// to Q/K/V, split into heads, each head runs (checked) attention, heads are
// concatenated and projected back. Each head maps onto one accelerator /
// one checked-kernel invocation, so attention protection (and fault alarms)
// are per-head — exactly how a multi-head hardware deployment of the
// paper's scheme composes. The Q/K/V/output projections, which the paper's
// fused checksum does not cover, run under the classic matmul-ABFT product
// check (`OpKind::kProjection`), so the whole block reports through one
// `LayerReport` of `OpReport`s.
#pragma once

#include <vector>

#include "attention/attention_config.hpp"
#include "core/guarded_op.hpp"
#include "core/kv_cache.hpp"
#include "model/linear.hpp"
#include "tensor/random.hpp"

namespace flashabft {

/// How the attention inside the block is computed.
enum class AttentionBackend {
  kReference,           ///< golden three-pass attention (no checking).
  kFlashAttention2,     ///< Alg. 2 kernel (no checking).
  kFlashAbft,           ///< Alg. 3 kernel with the fused online checksum.
  kTwoStepAbft,         ///< unfused baseline: two matmul-ABFT checks.
};

/// Result of one multi-head attention forward.
struct MhaResult {
  MatrixD output;      ///< n x model_dim.
  LayerReport report;  ///< projection + per-head attention OpReports.
};

/// The multi-head attention block.
class MultiHeadAttention {
 public:
  /// model_dim must equal num_heads * head_dim.
  MultiHeadAttention(std::size_t model_dim, std::size_t num_heads,
                     std::size_t head_dim, Rng& rng);

  /// Self-attention forward over embeddings x (n x model_dim). Projections
  /// always run under matmul-ABFT; heads are checked when `backend` carries
  /// checksums (kFlashAbft / kTwoStepAbft). `block` offsets the OpReport
  /// indices so a layer with several attention blocks (the decoder) keeps
  /// them distinguishable: heads get index block*num_heads + h, projections
  /// block*4 + {0:Q, 1:K, 2:V, 3:output}. When `cache` is non-null every
  /// projected K/V row is appended to it (the prefill path of a generation
  /// session) — the cache must have room for x.rows() more tokens.
  [[nodiscard]] MhaResult forward(const MatrixD& x, AttentionBackend backend,
                                  const GuardedExecutor& executor,
                                  AttentionMask mask = AttentionMask::kNone,
                                  std::size_t block = 0,
                                  KvCacheLayer* cache = nullptr) const;

  /// Cross-attention: queries projected from `x_q` (n_q x model_dim), keys
  /// and values from `memory` (n_kv x model_dim) — the decoder's
  /// encoder-attending block. Masking is not meaningful here and must be
  /// kNone.
  [[nodiscard]] MhaResult forward_cross(const MatrixD& x_q,
                                        const MatrixD& memory,
                                        AttentionBackend backend,
                                        const GuardedExecutor& executor,
                                        std::size_t block = 0) const;

  /// Incremental decode: `x_new` is ONE new token's embedding
  /// (1 x model_dim). The cache's running checksums are verified first
  /// (a guarded `kKvCache` op with index `kv_check_index`, restored from
  /// the checkpoint on alarm), the token's projected K/V row is appended,
  /// and the new query attends over the full cache per head — O(len) per
  /// step instead of the O(len^2) of recomputing full-sequence attention.
  /// Attending to every cached key IS causal attention at this position,
  /// so no mask is applied.
  [[nodiscard]] MhaResult forward_decode(const MatrixD& x_new,
                                         AttentionBackend backend,
                                         const GuardedExecutor& executor,
                                         KvCacheLayer& cache,
                                         std::size_t kv_check_index = 0,
                                         std::size_t block = 0) const;

  [[nodiscard]] std::size_t num_heads() const { return num_heads_; }
  [[nodiscard]] std::size_t head_dim() const { return head_dim_; }
  [[nodiscard]] std::size_t model_dim() const { return model_dim_; }

 private:
  [[nodiscard]] MhaResult forward_impl(const MatrixD& x_q,
                                       const MatrixD& x_kv,
                                       AttentionBackend backend,
                                       const GuardedExecutor& executor,
                                       AttentionMask mask, std::size_t block,
                                       KvCacheLayer* cache) const;

  /// One head's (checked) attention under `backend`; reports into `report`.
  [[nodiscard]] MatrixD run_head(const MatrixD& q, const MatrixD& k,
                                 const MatrixD& v, AttentionBackend backend,
                                 const GuardedExecutor& executor,
                                 const AttentionConfig& cfg,
                                 std::size_t index,
                                 LayerReport& report) const;

  std::size_t model_dim_;
  std::size_t num_heads_;
  std::size_t head_dim_;
  Linear wq_, wk_, wv_, wo_;
};

}  // namespace flashabft
