// Multi-head attention under the unified GuardedOp protection regime.
//
// Realizes the attention block of Fig. 1: the input embedding is projected
// to Q/K/V, split into heads, each head runs (checked) attention, heads are
// concatenated and projected back. Each head maps onto one accelerator /
// one checked-kernel invocation, so attention protection (and fault alarms)
// are per-head — exactly how a multi-head hardware deployment of the
// paper's scheme composes. The Q/K/V/output projections, which the paper's
// fused checksum does not cover, run under the classic matmul-ABFT product
// check (`OpKind::kProjection`), so the whole block reports through one
// `LayerReport` of `OpReport`s.
#pragma once

#include <vector>

#include "attention/attention_config.hpp"
#include "core/guarded_op.hpp"
#include "model/linear.hpp"
#include "tensor/random.hpp"

namespace flashabft {

/// How the attention inside the block is computed.
enum class AttentionBackend {
  kReference,           ///< golden three-pass attention (no checking).
  kFlashAttention2,     ///< Alg. 2 kernel (no checking).
  kFlashAbft,           ///< Alg. 3 kernel with the fused online checksum.
  kTwoStepAbft,         ///< unfused baseline: two matmul-ABFT checks.
};

/// Result of one multi-head attention forward.
struct MhaResult {
  MatrixD output;      ///< n x model_dim.
  LayerReport report;  ///< projection + per-head attention OpReports.
};

/// The multi-head attention block.
class MultiHeadAttention {
 public:
  /// model_dim must equal num_heads * head_dim.
  MultiHeadAttention(std::size_t model_dim, std::size_t num_heads,
                     std::size_t head_dim, Rng& rng);

  /// Self-attention forward over embeddings x (n x model_dim). Projections
  /// always run under matmul-ABFT; heads are checked when `backend` carries
  /// checksums (kFlashAbft / kTwoStepAbft). `block` offsets the OpReport
  /// indices so a layer with several attention blocks (the decoder) keeps
  /// them distinguishable: heads get index block*num_heads + h, projections
  /// block*4 + {0:Q, 1:K, 2:V, 3:output}.
  [[nodiscard]] MhaResult forward(const MatrixD& x, AttentionBackend backend,
                                  const GuardedExecutor& executor,
                                  AttentionMask mask = AttentionMask::kNone,
                                  std::size_t block = 0) const;

  /// Cross-attention: queries projected from `x_q` (n_q x model_dim), keys
  /// and values from `memory` (n_kv x model_dim) — the decoder's
  /// encoder-attending block. Masking is not meaningful here and must be
  /// kNone.
  [[nodiscard]] MhaResult forward_cross(const MatrixD& x_q,
                                        const MatrixD& memory,
                                        AttentionBackend backend,
                                        const GuardedExecutor& executor,
                                        std::size_t block = 0) const;

  [[nodiscard]] std::size_t num_heads() const { return num_heads_; }
  [[nodiscard]] std::size_t head_dim() const { return head_dim_; }
  [[nodiscard]] std::size_t model_dim() const { return model_dim_; }

 private:
  [[nodiscard]] MhaResult forward_impl(const MatrixD& x_q,
                                       const MatrixD& x_kv,
                                       AttentionBackend backend,
                                       const GuardedExecutor& executor,
                                       AttentionMask mask,
                                       std::size_t block) const;

  std::size_t model_dim_;
  std::size_t num_heads_;
  std::size_t head_dim_;
  Linear wq_, wk_, wv_, wo_;
};

}  // namespace flashabft
