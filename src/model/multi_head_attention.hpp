// Multi-head attention under the unified GuardedOp protection regime.
//
// Realizes the attention block of Fig. 1: the input embedding is projected
// to Q/K/V, split into heads, each head runs (checked) attention, heads are
// concatenated and projected back. Each head maps onto one accelerator /
// one checked-kernel invocation, so attention protection (and fault alarms)
// are per-head — exactly how a multi-head hardware deployment of the
// paper's scheme composes. The Q/K/V/output projections, which the paper's
// fused checksum does not cover, run under the classic matmul-ABFT product
// check (`OpKind::kProjection`), so the whole block reports through one
// `LayerReport` of `OpReport`s.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "attention/attention_config.hpp"
#include "core/guarded_op.hpp"
#include "core/kv_cache.hpp"
#include "core/kv_pool.hpp"
#include "model/linear.hpp"
#include "tensor/random.hpp"

namespace flashabft {

/// Sink for projected K/V rows during a cache-filling forward: one call per
/// token row, in position order. Adapts the prefill pass to whichever cache
/// is behind it (contiguous KvCacheLayer append or paged-pool append).
using KvRowSink = std::function<void(std::span<const double> k_row,
                                     std::span<const double> v_row)>;

/// How the attention inside the block is computed.
enum class AttentionBackend {
  kReference,           ///< golden three-pass attention (no checking).
  kFlashAttention2,     ///< Alg. 2 kernel (no checking).
  kFlashAbft,           ///< Alg. 3 kernel with the fused online checksum.
  kTwoStepAbft,         ///< unfused baseline: two matmul-ABFT checks.
};

/// Result of one multi-head attention forward.
struct MhaResult {
  MatrixD output;      ///< n x model_dim.
  LayerReport report;  ///< projection + per-head attention OpReports.
};

/// The multi-head attention block.
class MultiHeadAttention {
 public:
  /// model_dim must equal num_heads * head_dim. `dtype` is the storage
  /// format of the four projection weights: they are quantized at
  /// construction, BEFORE the input-side checksums are cached — rowsum(W)
  /// must describe the weights as stored or every compare would carry a
  /// permanent quantization offset and false-alarm.
  MultiHeadAttention(std::size_t model_dim, std::size_t num_heads,
                     std::size_t head_dim, Rng& rng,
                     DType dtype = DType::kF32);

  /// Self-attention forward over embeddings x (n x model_dim). Projections
  /// always run under matmul-ABFT; heads are checked when `backend` carries
  /// checksums (kFlashAbft / kTwoStepAbft). `block` offsets the OpReport
  /// indices so a layer with several attention blocks (the decoder) keeps
  /// them distinguishable: heads get index block*num_heads + h, projections
  /// block*4 + {0:Q, 1:K, 2:V, 3:output}. When `cache` is non-null every
  /// projected K/V row is appended to it (the prefill path of a generation
  /// session) — the cache must have room for x.rows() more tokens.
  [[nodiscard]] MhaResult forward(const MatrixD& x, AttentionBackend backend,
                                  const GuardedExecutor& executor,
                                  AttentionMask mask = AttentionMask::kNone,
                                  std::size_t block = 0,
                                  KvCacheLayer* cache = nullptr) const;

  /// The same forward with projected K/V rows streamed into an arbitrary
  /// cache sink — the paged prefill path (the scheduler's pool append).
  [[nodiscard]] MhaResult forward(const MatrixD& x, AttentionBackend backend,
                                  const GuardedExecutor& executor,
                                  AttentionMask mask, std::size_t block,
                                  const KvRowSink& sink) const;

  /// Cross-attention: queries projected from `x_q` (n_q x model_dim), keys
  /// and values from `memory` (n_kv x model_dim) — the decoder's
  /// encoder-attending block. Masking is not meaningful here and must be
  /// kNone.
  [[nodiscard]] MhaResult forward_cross(const MatrixD& x_q,
                                        const MatrixD& memory,
                                        AttentionBackend backend,
                                        const GuardedExecutor& executor,
                                        std::size_t block = 0) const;

  /// Incremental decode: `x_new` is ONE new token's embedding
  /// (1 x model_dim). The cache's running checksums are verified first
  /// (a guarded `kKvCache` op with index `kv_check_index`, restored from
  /// the checkpoint on alarm), the token's projected K/V row is appended,
  /// and the new query attends over the full cache per head — O(len) per
  /// step instead of the O(len^2) of recomputing full-sequence attention.
  /// Attending to every cached key IS causal attention at this position,
  /// so no mask is applied.
  [[nodiscard]] MhaResult forward_decode(const MatrixD& x_new,
                                         AttentionBackend backend,
                                         const GuardedExecutor& executor,
                                         KvCacheLayer& cache,
                                         std::size_t kv_check_index = 0,
                                         std::size_t block = 0) const;

  /// Incremental decode over a *paged* cache: the session's page contents
  /// and page table are verified first (a guarded `kKvPage` op with index
  /// `kv_check_index`, table + corrupted pages restored from checkpoints on
  /// alarm), the token's K/V row is appended through the pool, and each
  /// head attends over the non-contiguous page list with the strided
  /// paged Flash-ABFT kernel — no gather on the guarded path (the
  /// escalation fallback gathers and runs the scalar reference kernel).
  /// Only kFlashAbft is supported; the caller must have reserved pages for
  /// the append (`KvPagePool::append_pages_needed`).
  [[nodiscard]] MhaResult forward_decode_paged(const MatrixD& x_new,
                                               AttentionBackend backend,
                                               const GuardedExecutor& executor,
                                               KvPagePool& pool, PagedKv& kv,
                                               std::size_t layer,
                                               std::size_t kv_check_index = 0,
                                               std::size_t block = 0) const;

  /// The continuous-batching decode sweep of this block: `x_stacked` holds
  /// one token row per session (B x model_dim) and the Q/K/V/output
  /// projections run as ONE stacked product each (guarded_linear_batch —
  /// weights and their checksums stream once per batch), while the
  /// per-session work keeps per-session granularity: each session's pages
  /// + mapping are verified through its own executor, its K/V row appended,
  /// and each of its heads attends over its page list with the strided
  /// paged kernel. Outputs land row-per-session in the returned matrix;
  /// reports append to `reports[s]`. Scalar outputs are bit-identical to B
  /// separate `forward_decode_paged` calls.
  [[nodiscard]] MatrixD forward_decode_paged_batch(
      const MatrixD& x_stacked, AttentionBackend backend,
      std::span<const GuardedExecutor* const> executors, KvPagePool& pool,
      std::span<PagedKv* const> kvs, std::size_t layer,
      std::span<LayerReport* const> reports) const;

  [[nodiscard]] std::size_t num_heads() const { return num_heads_; }
  [[nodiscard]] std::size_t head_dim() const { return head_dim_; }
  [[nodiscard]] std::size_t model_dim() const { return model_dim_; }

  /// Fault injection: shifts one element of projection `slot`
  /// {0:Q, 1:K, 2:V, 3:output}. The cached input-side checksums are
  /// deliberately NOT refreshed: the batched decode sweep's stale
  /// rowsum(W) is what detects a post-construction weight upset, while
  /// per-call paths recompute from the corrupted weight and stay silently
  /// consistent — the asymmetry the fault campaign measures.
  void corrupt_projection_weight(std::size_t slot, std::size_t row,
                                 std::size_t col, double delta);

  /// Worst storage-integrity staleness over the four cached projection
  /// checksums (see Linear::checksum_staleness) — 0.0 iff no projection
  /// weight drifted since construction, at every storage dtype.
  [[nodiscard]] double weight_staleness() const;

 private:
  [[nodiscard]] MhaResult forward_impl(const MatrixD& x_q,
                                       const MatrixD& x_kv,
                                       AttentionBackend backend,
                                       const GuardedExecutor& executor,
                                       AttentionMask mask, std::size_t block,
                                       const KvRowSink& sink) const;

  /// One head's (checked) attention under `backend`; reports into `report`.
  [[nodiscard]] MatrixD run_head(const MatrixD& q, const MatrixD& k,
                                 const MatrixD& v, AttentionBackend backend,
                                 const GuardedExecutor& executor,
                                 const AttentionConfig& cfg,
                                 std::size_t index,
                                 LayerReport& report) const;

  std::size_t model_dim_;
  std::size_t num_heads_;
  std::size_t head_dim_;
  Linear wq_, wk_, wv_, wo_;
  /// Cached input-side ABFT checksums (rowsum(W), Σb) of the four frozen
  /// projections, indexed by slot {0:Q, 1:K, 2:V, 3:output} — handed to
  /// guarded_linear_batch so the batched decode sweep never recomputes
  /// them.
  std::array<Linear::InputChecksums, 4> projection_checksums_;
};

}  // namespace flashabft
