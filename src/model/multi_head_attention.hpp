// Multi-head attention with optional Flash-ABFT protection per head.
//
// Realizes the attention block of Fig. 1: the input embedding is projected
// to Q/K/V, split into heads, each head runs (checked) attention, heads are
// concatenated and projected back. Each head maps onto one accelerator /
// one checked-kernel invocation, so protection (and fault alarms) are
// per-head — exactly how a multi-head hardware deployment of the paper's
// scheme composes.
#pragma once

#include <vector>

#include "attention/attention_config.hpp"
#include "core/checker.hpp"
#include "core/flash_abft.hpp"
#include "model/linear.hpp"
#include "tensor/random.hpp"

namespace flashabft {

/// How the attention inside the block is computed.
enum class AttentionBackend {
  kReference,           ///< golden three-pass attention (no checking).
  kFlashAttention2,     ///< Alg. 2 kernel (no checking).
  kFlashAbft,           ///< Alg. 3 kernel with online checksums.
};

/// Per-head checksum outcome of a protected forward pass.
struct HeadCheckReport {
  std::size_t head = 0;
  double predicted = 0.0;
  double actual = 0.0;
  CheckVerdict verdict = CheckVerdict::kPass;
};

/// Result of one multi-head attention forward.
struct MhaResult {
  MatrixD output;                        ///< n x model_dim.
  std::vector<HeadCheckReport> checks;   ///< one per head when protected.

  [[nodiscard]] bool any_alarm() const {
    for (const HeadCheckReport& r : checks) {
      if (r.verdict == CheckVerdict::kAlarm) return true;
    }
    return false;
  }
};

/// The multi-head attention block.
class MultiHeadAttention {
 public:
  /// model_dim must equal num_heads * head_dim.
  MultiHeadAttention(std::size_t model_dim, std::size_t num_heads,
                     std::size_t head_dim, Rng& rng);

  /// Self-attention forward over embeddings x (n x model_dim). When
  /// `backend` is kFlashAbft, per-head checksum reports are produced and
  /// compared with `checker`.
  [[nodiscard]] MhaResult forward(const MatrixD& x, AttentionBackend backend,
                                  const Checker& checker,
                                  AttentionMask mask = AttentionMask::kNone) const;

  /// Cross-attention: queries projected from `x_q` (n_q x model_dim), keys
  /// and values from `memory` (n_kv x model_dim) — the decoder's
  /// encoder-attending block. Masking is not meaningful here and must be
  /// kNone.
  [[nodiscard]] MhaResult forward_cross(const MatrixD& x_q,
                                        const MatrixD& memory,
                                        AttentionBackend backend,
                                        const Checker& checker) const;

  [[nodiscard]] std::size_t num_heads() const { return num_heads_; }
  [[nodiscard]] std::size_t head_dim() const { return head_dim_; }
  [[nodiscard]] std::size_t model_dim() const { return model_dim_; }

 private:
  [[nodiscard]] MhaResult forward_impl(const MatrixD& x_q,
                                       const MatrixD& x_kv,
                                       AttentionBackend backend,
                                       const Checker& checker,
                                       AttentionMask mask) const;

  std::size_t model_dim_;
  std::size_t num_heads_;
  std::size_t head_dim_;
  Linear wq_, wk_, wv_, wo_;
};

}  // namespace flashabft
