#include "model/linear.hpp"

#include <cmath>
#include <utility>

#include "tensor/tensor_ops.hpp"

namespace flashabft {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : weight_(in_features, out_features), bias_(out_features, 0.0) {}

Linear Linear::random_init(std::size_t in_features, std::size_t out_features,
                           Rng& rng) {
  Linear layer(in_features, out_features);
  const double stddev = 1.0 / std::sqrt(double(in_features));
  fill_gaussian(layer.weight_, rng, 0.0, stddev);
  return layer;
}

MatrixD Linear::forward(const MatrixD& x) const {
  FLASHABFT_ENSURE_MSG(x.cols() == weight_.rows(),
                       "Linear: input width " << x.cols() << " != "
                                              << weight_.rows());
  MatrixD y = matmul(x, weight_);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    for (std::size_t j = 0; j < y.cols(); ++j) y(i, j) += bias_[j];
  }
  return y;
}

CheckedOp Linear::checked_forward(const MatrixD& x,
                                  const KernelContext& context) const {
  FLASHABFT_ENSURE_MSG(x.cols() == weight_.rows(),
                       "Linear: input width " << x.cols() << " != "
                                              << weight_.rows());
  FusedMatmul fused = backend_linear_fused(x, weight_, bias_, context.backend,
                                           context.dtype);
  CheckedOp op;
  op.check = {fused.predicted, fused.actual};
  op.output = std::move(fused.c);
  return op;
}

void Linear::quantize(DType dtype) {
  dtype_round_span(weight_.flat(), dtype);
  dtype_round_span(bias_, dtype);
}

namespace {

/// Raw-pointer y = x W (+ bias in a second pass), in `matmul`'s exact
/// accumulation order (i, k-ascending, j; bias added after the full sum) —
/// bit-identical rows to Linear::forward / scalar_fused, without the
/// per-element bounds checks the hot batched path cannot afford.
MatrixD raw_linear_scalar(const MatrixD& x, const MatrixD& w,
                          std::span<const double> bias) {
  MatrixD y(x.rows(), w.cols());
  const std::size_t inner = x.cols();
  const std::size_t out = w.cols();
  const double* w_data = w.flat().data();
  double* y_data = y.flat().data();
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* x_row = x.row(i).data();
    double* y_row = y_data + i * out;
    for (std::size_t k = 0; k < inner; ++k) {
      const double aik = x_row[k];
      if (aik == 0.0) continue;
      const double* w_row = w_data + k * out;
      for (std::size_t j = 0; j < out; ++j) y_row[j] += aik * w_row[j];
    }
    if (!bias.empty()) {
      for (std::size_t j = 0; j < out; ++j) y_row[j] += bias[j];
    }
  }
  return y;
}

}  // namespace

MatrixD guarded_linear(const Linear& layer, const MatrixD& in, OpKind kind,
                       std::size_t index, const GuardedExecutor& executor,
                       LayerReport& report,
                       const Linear::InputChecksums* cached) {
  const KernelContext context = executor.kernel_context();
  GuardedOp op = executor.run(
      kind, index, layer.forward_cost(in.rows()),
      [&](std::size_t attempt) {
        CheckedOp checked = layer.checked_forward(in, context);
        if (cached != nullptr && attempt == 0) {
          FLASHABFT_ENSURE(cached->row_w.size() == in.cols());
          double predicted = double(in.rows()) * cached->bias_sum;
          for (std::size_t k = 0; k < in.cols(); ++k) {
            double col = 0.0;
            for (std::size_t r = 0; r < in.rows(); ++r) col += in(r, k);
            predicted += col * cached->row_w[k];
          }
          checked.check.predicted = predicted;
        }
        return checked;
      },
      [&] { return layer.checked_forward(in, executor.fallback_context()); });
  MatrixD out = std::move(op.output);
  report.add(std::move(op));
  return out;
}

Linear::InputChecksums Linear::input_checksums() const {
  InputChecksums sums;
  sums.row_w.resize(weight_.rows());
  for (std::size_t k = 0; k < weight_.rows(); ++k) {
    const double* w_row = weight_.row(k).data();
    double sum = 0.0;
    for (std::size_t j = 0; j < weight_.cols(); ++j) sum += w_row[j];
    sums.row_w[k] = sum;
  }
  for (const double b : bias_) sums.bias_sum += b;
  return sums;
}

double Linear::checksum_staleness(const InputChecksums& cached) const {
  const InputChecksums live = input_checksums();
  double worst = std::abs(live.bias_sum - cached.bias_sum);
  const std::size_t n = std::min(live.row_w.size(), cached.row_w.size());
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(live.row_w[i] - cached.row_w[i]));
  }
  return worst;
}

std::vector<MatrixD> guarded_linear_batch(
    const Linear& layer, const MatrixD& x_stacked,
    std::span<const std::size_t> group_rows, OpKind kind, std::size_t index,
    std::span<const GuardedExecutor* const> executors,
    std::span<LayerReport* const> reports,
    const Linear::InputChecksums* cached) {
  const std::size_t groups = group_rows.size();
  FLASHABFT_ENSURE_MSG(groups > 0, "empty linear batch");
  FLASHABFT_ENSURE(executors.size() == groups && reports.size() == groups);
  std::size_t total_rows = 0;
  for (const std::size_t rows : group_rows) total_rows += rows;
  FLASHABFT_ENSURE_MSG(total_rows == x_stacked.rows(),
                       "group rows " << total_rows << " != stacked "
                                     << x_stacked.rows());
  const MatrixD& w = layer.weight();
  const std::vector<double>& bias = layer.bias();
  const std::size_t inner = w.rows();
  const std::size_t out_cols = w.cols();
  const KernelContext context = executors.front()->kernel_context();
  const ComputeBackend compute = context.backend;

  // The shared clean-path work: one product over every group's rows, one
  // input-side rowsum(W) / Σb for every group's prediction. The tiled SIMD
  // microkernel only pays off once the stack is deep enough to amortize
  // its packing; decode batches (a handful of single-token rows) run the
  // raw ordered loop on either backend.
  const bool tiled = compute == ComputeBackend::kSimd &&
                     x_stacked.rows() >= 4 * kSimdRowTile;
  MatrixD y = tiled ? [&] {
    MatrixD product = backend_matmul(x_stacked, w, compute);
    if (!bias.empty()) {
      for (std::size_t i = 0; i < product.rows(); ++i) {
        double* row = product.row(i).data();
        for (std::size_t j = 0; j < out_cols; ++j) row[j] += bias[j];
      }
    }
    return product;
  }()
                    : raw_linear_scalar(x_stacked, w, bias);
  // Storage write-back: the stacked product is stored in context.dtype, so
  // every group's actual checksum (accumulated at the row copy below) sums
  // the rounded values — matching checked_forward's per-session residuals.
  dtype_round_span(y.flat(), context.dtype);
  const Linear::InputChecksums local =
      cached != nullptr ? Linear::InputChecksums{} : layer.input_checksums();
  const std::vector<double>& row_w =
      cached != nullptr ? cached->row_w : local.row_w;
  const double bias_sum =
      cached != nullptr ? cached->bias_sum : local.bias_sum;
  FLASHABFT_ENSURE(row_w.size() == inner);

  std::vector<MatrixD> outputs;
  outputs.reserve(groups);
  std::size_t base = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t rows = group_rows[g];
    CheckedOp first;
    first.output = MatrixD(rows, out_cols);
    for (std::size_t r = 0; r < rows; ++r) {
      const double* src = y.row(base + r).data();
      double* dst = first.output.row(r).data();
      for (std::size_t j = 0; j < out_cols; ++j) {
        dst[j] = src[j];
        first.check.actual += src[j];
      }
    }
    for (std::size_t k = 0; k < inner; ++k) {
      double col = 0.0;
      for (std::size_t r = 0; r < rows; ++r) col += x_stacked(base + r, k);
      first.check.predicted += col * row_w[k];
    }
    first.check.predicted += double(rows) * bias_sum;

    // Retries (and the diverse fallback) recompute only this group's rows
    // — the same engine shape as the per-session guarded_linear.
    const auto group_input = [&, base, rows] {
      MatrixD x_g(rows, x_stacked.cols());
      for (std::size_t r = 0; r < rows; ++r) {
        const double* src = x_stacked.row(base + r).data();
        double* dst = x_g.row(r).data();
        for (std::size_t k = 0; k < inner; ++k) dst[k] = src[k];
      }
      return x_g;
    };
    GuardedOp op = executors[g]->run(
        kind, index, layer.forward_cost(rows),
        [&](std::size_t attempt) {
          if (attempt == 0) return std::move(first);
          return layer.checked_forward(group_input(), context);
        },
        [&] {
          return layer.checked_forward(group_input(),
                                       executors[g]->fallback_context());
        });
    outputs.push_back(std::move(op.output));
    reports[g]->add(std::move(op));
    base += rows;
  }
  return outputs;
}

}  // namespace flashabft
