#include "model/linear.hpp"

#include <cmath>
#include <utility>

#include "tensor/tensor_ops.hpp"

namespace flashabft {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : weight_(in_features, out_features), bias_(out_features, 0.0) {}

Linear Linear::random_init(std::size_t in_features, std::size_t out_features,
                           Rng& rng) {
  Linear layer(in_features, out_features);
  const double stddev = 1.0 / std::sqrt(double(in_features));
  fill_gaussian(layer.weight_, rng, 0.0, stddev);
  return layer;
}

MatrixD Linear::forward(const MatrixD& x) const {
  FLASHABFT_ENSURE_MSG(x.cols() == weight_.rows(),
                       "Linear: input width " << x.cols() << " != "
                                              << weight_.rows());
  MatrixD y = matmul(x, weight_);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    for (std::size_t j = 0; j < y.cols(); ++j) y(i, j) += bias_[j];
  }
  return y;
}

CheckedOp Linear::checked_forward(const MatrixD& x) const {
  FLASHABFT_ENSURE_MSG(x.cols() == weight_.rows(),
                       "Linear: input width " << x.cols() << " != "
                                              << weight_.rows());
  MatrixD y = matmul(x, weight_);
  const std::vector<double> col_x = column_sums(x);
  const std::vector<double> row_w = row_sums(weight_);
  CheckedOp op;
  for (std::size_t i = 0; i < col_x.size(); ++i) {
    op.check.predicted += col_x[i] * row_w[i];
  }
  double bias_sum = 0.0;
  for (const double b : bias_) bias_sum += b;
  op.check.predicted += double(x.rows()) * bias_sum;
  for (std::size_t i = 0; i < y.rows(); ++i) {
    for (std::size_t j = 0; j < y.cols(); ++j) y(i, j) += bias_[j];
  }
  op.check.actual = element_sum(y);
  op.output = std::move(y);
  return op;
}

MatrixD guarded_linear(const Linear& layer, const MatrixD& in, OpKind kind,
                       std::size_t index, const GuardedExecutor& executor,
                       LayerReport& report) {
  GuardedOp op = executor.run(
      kind, index, layer.forward_cost(in.rows()),
      [&](std::size_t) { return layer.checked_forward(in); },
      [&] { return layer.checked_forward(in); });
  MatrixD out = std::move(op.output);
  report.add(std::move(op));
  return out;
}

}  // namespace flashabft
