#include "model/linear.hpp"

#include <cmath>
#include <utility>

#include "tensor/tensor_ops.hpp"

namespace flashabft {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : weight_(in_features, out_features), bias_(out_features, 0.0) {}

Linear Linear::random_init(std::size_t in_features, std::size_t out_features,
                           Rng& rng) {
  Linear layer(in_features, out_features);
  const double stddev = 1.0 / std::sqrt(double(in_features));
  fill_gaussian(layer.weight_, rng, 0.0, stddev);
  return layer;
}

MatrixD Linear::forward(const MatrixD& x) const {
  FLASHABFT_ENSURE_MSG(x.cols() == weight_.rows(),
                       "Linear: input width " << x.cols() << " != "
                                              << weight_.rows());
  MatrixD y = matmul(x, weight_);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    for (std::size_t j = 0; j < y.cols(); ++j) y(i, j) += bias_[j];
  }
  return y;
}

CheckedOp Linear::checked_forward(const MatrixD& x,
                                  ComputeBackend backend) const {
  FLASHABFT_ENSURE_MSG(x.cols() == weight_.rows(),
                       "Linear: input width " << x.cols() << " != "
                                              << weight_.rows());
  FusedMatmul fused = backend_linear_fused(x, weight_, bias_, backend);
  CheckedOp op;
  op.check = {fused.predicted, fused.actual};
  op.output = std::move(fused.c);
  return op;
}

MatrixD guarded_linear(const Linear& layer, const MatrixD& in, OpKind kind,
                       std::size_t index, const GuardedExecutor& executor,
                       LayerReport& report) {
  const ComputeBackend backend = executor.compute_backend();
  GuardedOp op = executor.run(
      kind, index, layer.forward_cost(in.rows()),
      [&](std::size_t) { return layer.checked_forward(in, backend); },
      [&] { return layer.checked_forward(in, ComputeBackend::kScalar); });
  MatrixD out = std::move(op.output);
  report.add(std::move(op));
  return out;
}

}  // namespace flashabft
