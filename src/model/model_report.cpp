#include "model/model_report.hpp"

#include <utility>

#include "common/ensure.hpp"

namespace flashabft {

namespace {

void accumulate(const LayerReport& report, ModelOpRollup& rollup) {
  for (const OpReport& op : report.ops) {
    ModelOpStats& stats = rollup[std::size_t(op.kind)];
    ++stats.checks;
    stats.alarms += op.alarms;
    if (op.recovery == RecoveryStatus::kRecovered) ++stats.recovered;
    if (op.recovery == RecoveryStatus::kEscalated &&
        op.kind != OpKind::kReferenceFallback) {
      ++stats.escalated;
    }
  }
}

}  // namespace

void ModelReport::add_layer(LayerReport report) {
  layers.push_back(std::move(report));
}

ModelOpRollup ModelReport::rollup() const {
  ModelOpRollup out{};
  for (const LayerReport& layer : layers) accumulate(layer, out);
  accumulate(final_ops, out);
  return out;
}

ModelOpRollup ModelReport::layer_rollup(std::size_t layer) const {
  FLASHABFT_ENSURE_MSG(layer < layers.size(),
                       "layer " << layer << " of " << layers.size());
  ModelOpRollup out{};
  accumulate(layers[layer], out);
  return out;
}

std::size_t ModelReport::executions() const {
  std::size_t total = final_ops.executions();
  for (const LayerReport& layer : layers) total += layer.executions();
  return total;
}

std::size_t ModelReport::alarm_events() const {
  std::size_t total = final_ops.alarm_events();
  for (const LayerReport& layer : layers) total += layer.alarm_events();
  return total;
}

std::size_t ModelReport::fallback_ops() const {
  std::size_t total = final_ops.count(OpKind::kReferenceFallback);
  for (const LayerReport& layer : layers) {
    total += layer.count(OpKind::kReferenceFallback);
  }
  return total;
}

std::size_t ModelReport::recovered_ops() const {
  const ModelOpRollup all = rollup();
  std::size_t total = 0;
  for (const ModelOpStats& stats : all) total += stats.recovered;
  return total;
}

std::size_t ModelReport::escalated_ops() const {
  const ModelOpRollup all = rollup();
  std::size_t total = 0;
  for (const ModelOpStats& stats : all) total += stats.escalated;
  return total;
}

std::size_t ModelReport::dmr_compares() const {
  std::size_t total = final_ops.dmr_compares;
  for (const LayerReport& layer : layers) total += layer.dmr_compares;
  return total;
}

std::size_t ModelReport::dmr_mismatches() const {
  std::size_t total = final_ops.dmr_mismatches;
  for (const LayerReport& layer : layers) total += layer.dmr_mismatches;
  return total;
}

bool ModelReport::all_accepted_clean() const {
  for (const LayerReport& layer : layers) {
    if (!layer.all_accepted_clean()) return false;
  }
  return final_ops.all_accepted_clean();
}

std::vector<OpReport> ModelReport::flatten() const {
  std::vector<OpReport> out;
  std::size_t total = final_ops.ops.size();
  for (const LayerReport& layer : layers) total += layer.ops.size();
  out.reserve(total);
  for (const LayerReport& layer : layers) {
    out.insert(out.end(), layer.ops.begin(), layer.ops.end());
  }
  out.insert(out.end(), final_ops.ops.begin(), final_ops.ops.end());
  return out;
}

void ModelReport::merge(ModelReport other) {
  if (layers.size() < other.layers.size()) {
    layers.resize(other.layers.size());
  }
  for (std::size_t l = 0; l < other.layers.size(); ++l) {
    layers[l].append(std::move(other.layers[l]));
  }
  final_ops.append(std::move(other.final_ops));
}

}  // namespace flashabft
