#include "model/layernorm.hpp"

#include <cmath>

#include "common/ensure.hpp"

namespace flashabft {

LayerNorm::LayerNorm(std::size_t features, double epsilon)
    : gamma_(features, 1.0), beta_(features, 0.0), epsilon_(epsilon) {
  FLASHABFT_ENSURE(features > 0);
}

MatrixD LayerNorm::forward(const MatrixD& x) const {
  FLASHABFT_ENSURE_MSG(x.cols() == gamma_.size(),
                       "LayerNorm width mismatch: " << x.cols() << " vs "
                                                    << gamma_.size());
  MatrixD y(x.rows(), x.cols());
  const double n = double(x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double mean = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) mean += x(i, j);
    mean /= n;
    double var = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double dv = x(i, j) - mean;
      var += dv * dv;
    }
    var /= n;
    const double inv = 1.0 / std::sqrt(var + epsilon_);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      y(i, j) = gamma_[j] * (x(i, j) - mean) * inv + beta_[j];
    }
  }
  return y;
}

}  // namespace flashabft
