// Token embedding front-end (the "Input embedding" arrow of paper Fig. 1).
//
// A toy-but-complete text front-end so examples can run end-to-end from a
// prompt string: whitespace/punctuation tokenizer with a hashed vocabulary,
// learned-style token embedding table (seeded Gaussian), and sinusoidal
// positional encodings (Vaswani et al. 2017).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "numerics/dtype.hpp"
#include "tensor/matrix.hpp"
#include "tensor/random.hpp"

namespace flashabft {

/// Splits text into lower-cased word/punctuation tokens.
[[nodiscard]] std::vector<std::string> tokenize(std::string_view text);

/// Hashed-vocabulary token embedding: token string -> stable id -> row of a
/// seeded embedding table. No training, but deterministic and distributional
/// (embeddings ~ N(0, 1/sqrt(dim)) like a trained table after LayerNorm).
class Embedding {
 public:
  /// vocab_size buckets of dimension `dim`, seeded deterministically.
  Embedding(std::size_t vocab_size, std::size_t dim, std::uint64_t seed);

  /// Stable bucket id for a token (FNV-1a hash modulo vocab size).
  [[nodiscard]] std::size_t token_id(std::string_view token) const;

  /// Embeds a token sequence: one row per token, token embedding plus
  /// sinusoidal positional encoding.
  [[nodiscard]] MatrixD embed(const std::vector<std::string>& tokens) const;

  /// Embeds raw text (tokenize + embed).
  [[nodiscard]] MatrixD embed_text(std::string_view text) const;

  /// Embeds token ids directly, with positional encodings starting at
  /// absolute position `start_pos` — the autoregressive-decode front-end
  /// (a single token at position `cache length` embeds identically to the
  /// same token inside a full-sequence pass).
  [[nodiscard]] MatrixD embed_ids(std::span<const std::size_t> ids,
                                  std::size_t start_pos = 0) const;

  /// Token ids of a tokenized sequence (hashed-vocabulary buckets).
  [[nodiscard]] std::vector<std::size_t> token_ids(
      const std::vector<std::string>& tokens) const;

  /// The embedding table (vocab_size x dim) — shared with a tied LM head.
  [[nodiscard]] const MatrixD& table() const { return table_; }

  /// Rounds the table through `dtype` in place — the one-time storage
  /// quantization of the shared front-end/LM-head weights. Owners caching
  /// table-derived checksums (the tied head's colsum) must recompute them
  /// AFTER this runs.
  void quantize(DType dtype) { dtype_round_span(table_.flat(), dtype); }

  /// Fault injection: shifts one table element in place. Owners caching
  /// table-derived checksums (the tied LM head's colsum) deliberately go
  /// stale — that staleness is the detection path the fault campaign
  /// measures.
  void corrupt(std::size_t row, std::size_t col, double delta) {
    table_(row, col) += delta;
  }

  [[nodiscard]] std::size_t dim() const { return table_.cols(); }
  [[nodiscard]] std::size_t vocab_size() const { return table_.rows(); }

 private:
  MatrixD table_;  // vocab_size x dim
  /// Cached PE divisors pow(10000, 2*(i/2)/dim) — position-independent.
  std::vector<double> pos_freq_;
};

/// The sinusoidal positional encoding value PE(pos, i) for dimension `dim`.
[[nodiscard]] double positional_encoding(std::size_t pos, std::size_t i,
                                         std::size_t dim);

}  // namespace flashabft
