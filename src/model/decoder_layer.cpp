#include "model/decoder_layer.hpp"

#include <utility>

#include "tensor/tensor_ops.hpp"

namespace flashabft {

DecoderLayer::DecoderLayer(const DecoderLayerConfig& cfg, Rng& rng)
    : cfg_(cfg),
      self_attention_(cfg.model_dim, cfg.num_heads, cfg.head_dim, rng),
      norm1_(cfg.model_dim),
      cross_attention_(cfg.cross_attention
                           ? std::optional<MultiHeadAttention>(
                                 std::in_place, cfg.model_dim, cfg.num_heads,
                                 cfg.head_dim, rng)
                           : std::nullopt),
      norm2_(cfg.model_dim),
      ffn1_(Linear::random_init(cfg.model_dim, cfg.ffn_dim, rng)),
      ffn2_(Linear::random_init(cfg.ffn_dim, cfg.model_dim, rng)),
      norm3_(cfg.model_dim) {}

MatrixD DecoderLayer::ffn_block(const MatrixD& h,
                                const GuardedExecutor& executor,
                                std::size_t ffn_base,
                                LayerReport& report) const {
  const MatrixD inner = gelu_forward(
      guarded_linear(ffn1_, h, OpKind::kFfn, ffn_base, executor, report));
  const MatrixD ffn = guarded_linear(ffn2_, inner, OpKind::kFfn, ffn_base + 1,
                                     executor, report);
  return norm3_.forward(element_add(h, ffn));
}

DecoderLayerResult DecoderLayer::forward(
    const MatrixD& x, const MatrixD& memory, AttentionBackend backend,
    const GuardedExecutor& executor) const {
  FLASHABFT_ENSURE_MSG(cross_attention_.has_value(),
                       "decoder-only layer has no cross-attention block");
  FLASHABFT_ENSURE(x.cols() == cfg_.model_dim);
  FLASHABFT_ENSURE(memory.cols() == cfg_.model_dim);

  DecoderLayerResult result;

  // Causally-masked self-attention + Add & Norm (block 0).
  MhaResult self = self_attention_.forward(x, backend, executor,
                                           AttentionMask::kCausal,
                                           /*block=*/0);
  const MatrixD h1 = norm1_.forward(element_add(x, self.output));
  result.report = std::move(self.report);

  // Encoder cross-attention + Add & Norm (block 1).
  MhaResult cross = cross_attention_->forward_cross(h1, memory, backend,
                                                    executor, /*block=*/1);
  const MatrixD h2 = norm2_.forward(element_add(h1, cross.output));
  result.report.append(std::move(cross.report));

  // Feed-forward block + Add & Norm.
  result.output = ffn_block(h2, executor, /*ffn_base=*/0, result.report);
  return result;
}

DecoderLayerResult DecoderLayer::forward_causal(
    const MatrixD& x, AttentionBackend backend,
    const GuardedExecutor& executor, std::size_t layer_index,
    KvCacheLayer* cache) const {
  FLASHABFT_ENSURE(x.cols() == cfg_.model_dim);

  DecoderLayerResult result;
  MhaResult self =
      self_attention_.forward(x, backend, executor, AttentionMask::kCausal,
                              /*block=*/layer_index, cache);
  const MatrixD h1 = norm1_.forward(element_add(x, self.output));
  result.report = std::move(self.report);
  result.output =
      ffn_block(h1, executor, /*ffn_base=*/layer_index * 2, result.report);
  return result;
}

DecoderLayerResult DecoderLayer::forward_decode(
    const MatrixD& x_new, AttentionBackend backend,
    const GuardedExecutor& executor, KvCacheLayer& cache,
    std::size_t layer_index) const {
  FLASHABFT_ENSURE(x_new.cols() == cfg_.model_dim);

  DecoderLayerResult result;
  MhaResult self = self_attention_.forward_decode(
      x_new, backend, executor, cache, /*kv_check_index=*/layer_index,
      /*block=*/layer_index);
  const MatrixD h1 = norm1_.forward(element_add(x_new, self.output));
  result.report = std::move(self.report);
  result.output =
      ffn_block(h1, executor, /*ffn_base=*/layer_index * 2, result.report);
  return result;
}

}  // namespace flashabft
