#include "model/decoder_layer.hpp"

namespace flashabft {

namespace {

MatrixD add_residual(const MatrixD& a, const MatrixD& b) {
  FLASHABFT_ENSURE(a.rows() == b.rows() && a.cols() == b.cols());
  MatrixD out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out(i, j) = a(i, j) + b(i, j);
    }
  }
  return out;
}

}  // namespace

DecoderLayer::DecoderLayer(const DecoderLayerConfig& cfg, Rng& rng)
    : cfg_(cfg),
      self_attention_(cfg.model_dim, cfg.num_heads, cfg.head_dim, rng),
      norm1_(cfg.model_dim),
      cross_attention_(cfg.model_dim, cfg.num_heads, cfg.head_dim, rng),
      norm2_(cfg.model_dim),
      ffn1_(Linear::random_init(cfg.model_dim, cfg.ffn_dim, rng)),
      ffn2_(Linear::random_init(cfg.ffn_dim, cfg.model_dim, rng)),
      norm3_(cfg.model_dim) {}

DecoderLayerResult DecoderLayer::forward(const MatrixD& x,
                                         const MatrixD& memory,
                                         AttentionBackend backend,
                                         const Checker& checker) const {
  FLASHABFT_ENSURE(x.cols() == cfg_.model_dim);
  FLASHABFT_ENSURE(memory.cols() == cfg_.model_dim);

  // Causally-masked self-attention + Add & Norm.
  MhaResult self =
      self_attention_.forward(x, backend, checker, AttentionMask::kCausal);
  const MatrixD h1 = norm1_.forward(add_residual(x, self.output));

  // Encoder cross-attention + Add & Norm.
  MhaResult cross =
      cross_attention_.forward_cross(h1, memory, backend, checker);
  const MatrixD h2 = norm2_.forward(add_residual(h1, cross.output));

  // Feed-forward block + Add & Norm.
  const MatrixD ffn = ffn2_.forward(gelu_forward(ffn1_.forward(h2)));
  DecoderLayerResult result;
  result.output = norm3_.forward(add_residual(h2, ffn));
  result.self_checks = std::move(self.checks);
  result.cross_checks = std::move(cross.checks);
  return result;
}

}  // namespace flashabft
