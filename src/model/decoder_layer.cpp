#include "model/decoder_layer.hpp"

#include <utility>

#include "tensor/tensor_ops.hpp"

namespace flashabft {

DecoderLayer::DecoderLayer(const DecoderLayerConfig& cfg, Rng& rng)
    : cfg_(cfg),
      self_attention_(cfg.model_dim, cfg.num_heads, cfg.head_dim, rng),
      norm1_(cfg.model_dim),
      cross_attention_(cfg.model_dim, cfg.num_heads, cfg.head_dim, rng),
      norm2_(cfg.model_dim),
      ffn1_(Linear::random_init(cfg.model_dim, cfg.ffn_dim, rng)),
      ffn2_(Linear::random_init(cfg.ffn_dim, cfg.model_dim, rng)),
      norm3_(cfg.model_dim) {}

DecoderLayerResult DecoderLayer::forward(
    const MatrixD& x, const MatrixD& memory, AttentionBackend backend,
    const GuardedExecutor& executor) const {
  FLASHABFT_ENSURE(x.cols() == cfg_.model_dim);
  FLASHABFT_ENSURE(memory.cols() == cfg_.model_dim);

  DecoderLayerResult result;

  // Causally-masked self-attention + Add & Norm (block 0).
  MhaResult self = self_attention_.forward(x, backend, executor,
                                           AttentionMask::kCausal,
                                           /*block=*/0);
  const MatrixD h1 = norm1_.forward(element_add(x, self.output));
  result.report = std::move(self.report);

  // Encoder cross-attention + Add & Norm (block 1).
  MhaResult cross = cross_attention_.forward_cross(h1, memory, backend,
                                                   executor, /*block=*/1);
  const MatrixD h2 = norm2_.forward(element_add(h1, cross.output));
  result.report.append(std::move(cross.report));

  // Feed-forward block + Add & Norm.
  const MatrixD inner = gelu_forward(
      guarded_linear(ffn1_, h2, OpKind::kFfn, 0, executor, result.report));
  const MatrixD ffn =
      guarded_linear(ffn2_, inner, OpKind::kFfn, 1, executor, result.report);
  result.output = norm3_.forward(element_add(h2, ffn));
  return result;
}

}  // namespace flashabft
