#include "model/decoder_layer.hpp"

#include <utility>

#include "common/ensure.hpp"
#include "core/meta_guard.hpp"
#include "tensor/tensor_ops.hpp"

namespace flashabft {

DecoderLayer::DecoderLayer(const DecoderLayerConfig& cfg, Rng& rng)
    : cfg_(cfg),
      self_attention_(cfg.model_dim, cfg.num_heads, cfg.head_dim, rng,
                      cfg.dtype),
      norm1_(cfg.model_dim),
      cross_attention_(cfg.cross_attention
                           ? std::optional<MultiHeadAttention>(
                                 std::in_place, cfg.model_dim, cfg.num_heads,
                                 cfg.head_dim, rng, cfg.dtype)
                           : std::nullopt),
      norm2_(cfg.model_dim),
      ffn1_(Linear::random_init(cfg.model_dim, cfg.ffn_dim, rng)),
      ffn2_(Linear::random_init(cfg.ffn_dim, cfg.model_dim, rng)),
      // Quantize BEFORE caching the input-side checksums: rowsum(W)/Σb
      // must describe the FFN weights as stored.
      ffn1_checksums_((ffn1_.quantize(cfg.dtype), ffn1_.input_checksums())),
      ffn2_checksums_((ffn2_.quantize(cfg.dtype), ffn2_.input_checksums())),
      norm3_(cfg.model_dim) {}

void DecoderLayer::corrupt_projection_weight(std::size_t slot, std::size_t row,
                                             std::size_t col, double delta) {
  self_attention_.corrupt_projection_weight(slot, row, col, delta);
}

void DecoderLayer::corrupt_ffn_weight(std::size_t which, std::size_t row,
                                      std::size_t col, double delta) {
  FLASHABFT_ENSURE_MSG(which < 2, "FFN product " << which << " out of range");
  MatrixD& weight = (which == 0 ? ffn1_ : ffn2_).weight();
  FLASHABFT_ENSURE(row < weight.rows() && col < weight.cols());
  weight(row, col) += delta;
  // ffn*_checksums_ deliberately stay stale (see header).
}

double DecoderLayer::weight_staleness() const {
  double worst = self_attention_.weight_staleness();
  if (cross_attention_) {
    worst = std::max(worst, cross_attention_->weight_staleness());
  }
  worst = std::max(worst, ffn1_.checksum_staleness(ffn1_checksums_));
  worst = std::max(worst, ffn2_.checksum_staleness(ffn2_checksums_));
  return worst;
}

MatrixD DecoderLayer::ffn_block(const MatrixD& h,
                                const GuardedExecutor& executor,
                                std::size_t ffn_base,
                                LayerReport& report) const {
  // FFN products predict against the construction-time checksums (the
  // legacy weight blind spot fix); the checksum-free GELU and Add & Norm
  // glue runs under selective DMR when Options::dmr_glue is on.
  const MatrixD lin1 = guarded_linear(ffn1_, h, OpKind::kFfn, ffn_base,
                                      executor, report, &ffn1_checksums_);
  const MatrixD inner = dmr_guard(
      executor, ffn_base, double(lin1.rows()) * double(lin1.cols()),
      [&] { return gelu_forward(lin1); }, report);
  const MatrixD ffn = guarded_linear(ffn2_, inner, OpKind::kFfn, ffn_base + 1,
                                     executor, report, &ffn2_checksums_);
  return dmr_guard(
      executor, ffn_base + 1, double(h.rows()) * double(h.cols()),
      [&] { return norm3_.forward(element_add(h, ffn)); }, report);
}

DecoderLayerResult DecoderLayer::forward(
    const MatrixD& x, const MatrixD& memory, AttentionBackend backend,
    const GuardedExecutor& executor) const {
  FLASHABFT_ENSURE_MSG(cross_attention_.has_value(),
                       "decoder-only layer has no cross-attention block");
  FLASHABFT_ENSURE(x.cols() == cfg_.model_dim);
  FLASHABFT_ENSURE(memory.cols() == cfg_.model_dim);

  DecoderLayerResult result;

  // Causally-masked self-attention + Add & Norm (block 0).
  MhaResult self = self_attention_.forward(x, backend, executor,
                                           AttentionMask::kCausal,
                                           /*block=*/0);
  result.report = std::move(self.report);
  const MatrixD h1 = dmr_guard(
      executor, /*index=*/0, double(x.rows()) * double(cfg_.model_dim),
      [&] { return norm1_.forward(element_add(x, self.output)); },
      result.report);

  // Encoder cross-attention + Add & Norm (block 1).
  MhaResult cross = cross_attention_->forward_cross(h1, memory, backend,
                                                    executor, /*block=*/1);
  result.report.append(std::move(cross.report));
  const MatrixD h2 = dmr_guard(
      executor, /*index=*/1, double(h1.rows()) * double(cfg_.model_dim),
      [&] { return norm2_.forward(element_add(h1, cross.output)); },
      result.report);

  // Feed-forward block + Add & Norm.
  result.output = ffn_block(h2, executor, /*ffn_base=*/0, result.report);
  return result;
}

DecoderLayerResult DecoderLayer::forward_causal(
    const MatrixD& x, AttentionBackend backend,
    const GuardedExecutor& executor, std::size_t layer_index,
    KvCacheLayer* cache) const {
  FLASHABFT_ENSURE(x.cols() == cfg_.model_dim);

  DecoderLayerResult result;
  MhaResult self =
      self_attention_.forward(x, backend, executor, AttentionMask::kCausal,
                              /*block=*/layer_index, cache);
  result.report = std::move(self.report);
  const MatrixD h1 = dmr_guard(
      executor, layer_index, double(x.rows()) * double(cfg_.model_dim),
      [&] { return norm1_.forward(element_add(x, self.output)); },
      result.report);
  result.output =
      ffn_block(h1, executor, /*ffn_base=*/layer_index * 2, result.report);
  return result;
}

DecoderLayerResult DecoderLayer::forward_causal_paged(
    const MatrixD& x, AttentionBackend backend,
    const GuardedExecutor& executor, std::size_t layer_index,
    KvPagePool& pool, PagedKv& kv) const {
  FLASHABFT_ENSURE(x.cols() == cfg_.model_dim);

  DecoderLayerResult result;
  const KvRowSink sink = [&pool, &kv, layer_index](
                             std::span<const double> k_row,
                             std::span<const double> v_row) {
    pool.append(kv, layer_index, k_row, v_row);
  };
  MhaResult self =
      self_attention_.forward(x, backend, executor, AttentionMask::kCausal,
                              /*block=*/layer_index, sink);
  result.report = std::move(self.report);
  const MatrixD h1 = dmr_guard(
      executor, layer_index, double(x.rows()) * double(cfg_.model_dim),
      [&] { return norm1_.forward(element_add(x, self.output)); },
      result.report);
  result.output =
      ffn_block(h1, executor, /*ffn_base=*/layer_index * 2, result.report);
  return result;
}

DecoderLayerResult DecoderLayer::forward_decode(
    const MatrixD& x_new, AttentionBackend backend,
    const GuardedExecutor& executor, KvCacheLayer& cache,
    std::size_t layer_index) const {
  FLASHABFT_ENSURE(x_new.cols() == cfg_.model_dim);

  DecoderLayerResult result;
  MhaResult self = self_attention_.forward_decode(
      x_new, backend, executor, cache, /*kv_check_index=*/layer_index,
      /*block=*/layer_index);
  result.report = std::move(self.report);
  const MatrixD h1 = dmr_guard(
      executor, layer_index, double(x_new.rows()) * double(cfg_.model_dim),
      [&] { return norm1_.forward(element_add(x_new, self.output)); },
      result.report);
  result.output =
      ffn_block(h1, executor, /*ffn_base=*/layer_index * 2, result.report);
  return result;
}

MatrixD DecoderLayer::forward_decode_paged_batch(
    const MatrixD& x_stacked, AttentionBackend backend,
    std::span<const GuardedExecutor* const> executors, KvPagePool& pool,
    std::span<PagedKv* const> kvs, std::size_t layer_index,
    std::span<LayerReport* const> reports) const {
  FLASHABFT_ENSURE(x_stacked.cols() == cfg_.model_dim);
  const std::vector<std::size_t> ones(x_stacked.rows(), 1);

  const MatrixD attn = self_attention_.forward_decode_paged_batch(
      x_stacked, backend, executors, pool, kvs, layer_index, reports);
  // The stacked glue runs one DMR pair for the whole batch; a mismatch
  // attributes to the first session's stream (the re-run covers everyone).
  const MatrixD h1 = dmr_guard(
      *executors.front(), layer_index,
      double(x_stacked.rows()) * double(cfg_.model_dim),
      [&] { return norm1_.forward(element_add(x_stacked, attn)); },
      *reports.front());

  // FFN as stacked products (per-session checksum groups), then the
  // row-wise Add & Norm — LayerNorm/GELU are per-row, so the stacked pass
  // is bit-identical to per-session forwards.
  const auto ffn_product = [&](const Linear& w, const MatrixD& in,
                               std::size_t slot) {
    std::vector<MatrixD> rows = guarded_linear_batch(
        w, in, ones, OpKind::kFfn, layer_index * 2 + slot, executors,
        reports, slot == 0 ? &ffn1_checksums_ : &ffn2_checksums_);
    MatrixD stacked(in.rows(), w.out_features());
    for (std::size_t s = 0; s < rows.size(); ++s) {
      const double* src = rows[s].row(0).data();
      double* dst = stacked.row(s).data();
      for (std::size_t j = 0; j < stacked.cols(); ++j) dst[j] = src[j];
    }
    return stacked;
  };
  const MatrixD lin1 = ffn_product(ffn1_, h1, 0);
  const MatrixD inner = dmr_guard(
      *executors.front(), layer_index * 2,
      double(lin1.rows()) * double(lin1.cols()),
      [&] { return gelu_forward(lin1); }, *reports.front());
  const MatrixD ffn = ffn_product(ffn2_, inner, 1);
  return dmr_guard(
      *executors.front(), layer_index * 2 + 1,
      double(h1.rows()) * double(cfg_.model_dim),
      [&] { return norm3_.forward(element_add(h1, ffn)); },
      *reports.front());
}

DecoderLayerResult DecoderLayer::forward_decode_paged(
    const MatrixD& x_new, AttentionBackend backend,
    const GuardedExecutor& executor, KvPagePool& pool, PagedKv& kv,
    std::size_t layer_index) const {
  FLASHABFT_ENSURE(x_new.cols() == cfg_.model_dim);

  DecoderLayerResult result;
  MhaResult self = self_attention_.forward_decode_paged(
      x_new, backend, executor, pool, kv, layer_index,
      /*kv_check_index=*/layer_index, /*block=*/layer_index);
  result.report = std::move(self.report);
  const MatrixD h1 = dmr_guard(
      executor, layer_index, double(x_new.rows()) * double(cfg_.model_dim),
      [&] { return norm1_.forward(element_add(x_new, self.output)); },
      result.report);
  result.output =
      ffn_block(h1, executor, /*ffn_base=*/layer_index * 2, result.report);
  return result;
}

}  // namespace flashabft
