#include "model/embedding.hpp"

#include <cctype>
#include <cmath>

#include "common/ensure.hpp"
#include "tensor/tensor_ops.hpp"

namespace flashabft {

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char ch : text) {
    const unsigned char uc = static_cast<unsigned char>(ch);
    if (std::isalnum(uc)) {
      current.push_back(char(std::tolower(uc)));
    } else {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
      if (std::ispunct(uc)) tokens.push_back(std::string(1, ch));
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Embedding::Embedding(std::size_t vocab_size, std::size_t dim,
                     std::uint64_t seed)
    : table_(vocab_size, dim), pos_freq_(dim) {
  FLASHABFT_ENSURE(vocab_size > 0 && dim > 0);
  Rng rng(seed);
  fill_gaussian(table_, rng, 0.0, 1.0 / std::sqrt(double(dim)) * 4.0);
  // The position-independent PE divisor of each dimension, cached so the
  // per-decode-step embed pays sin/cos only (angles stay bit-identical to
  // positional_encoding: same pow, same division).
  for (std::size_t i = 0; i < dim; ++i) {
    pos_freq_[i] = std::pow(10000.0, double(2 * (i / 2)) / double(dim));
  }
}

std::size_t Embedding::token_id(std::string_view token) const {
  // FNV-1a, 64-bit.
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char ch : token) {
    hash ^= std::uint64_t(static_cast<unsigned char>(ch));
    hash *= 1099511628211ULL;
  }
  return std::size_t(hash % table_.rows());
}

double positional_encoding(std::size_t pos, std::size_t i, std::size_t dim) {
  const double exponent = double(2 * (i / 2)) / double(dim);
  const double angle = double(pos) / std::pow(10000.0, exponent);
  return (i % 2 == 0) ? std::sin(angle) : std::cos(angle);
}

MatrixD Embedding::embed(const std::vector<std::string>& tokens) const {
  return embed_ids(token_ids(tokens), /*start_pos=*/0);
}

MatrixD Embedding::embed_ids(std::span<const std::size_t> ids,
                             std::size_t start_pos) const {
  MatrixD out(ids.size(), dim());
  for (std::size_t t = 0; t < ids.size(); ++t) {
    FLASHABFT_ENSURE_MSG(ids[t] < vocab_size(),
                         "token id " << ids[t] << " outside vocab "
                                     << vocab_size());
    const double pos = double(start_pos + t);
    const double* row = table_.row(ids[t]).data();
    double* dst = out.row(t).data();
    for (std::size_t x = 0; x < dim(); ++x) {
      const double angle = pos / pos_freq_[x];
      dst[x] = row[x] + (x % 2 == 0 ? std::sin(angle) : std::cos(angle));
    }
  }
  return out;
}

std::vector<std::size_t> Embedding::token_ids(
    const std::vector<std::string>& tokens) const {
  std::vector<std::size_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& token : tokens) ids.push_back(token_id(token));
  return ids;
}

MatrixD Embedding::embed_text(std::string_view text) const {
  return embed(tokenize(text));
}

}  // namespace flashabft
