#include "model/encoder_layer.hpp"

#include <utility>

#include "tensor/tensor_ops.hpp"

namespace flashabft {

EncoderLayer::EncoderLayer(const EncoderLayerConfig& cfg, Rng& rng)
    : cfg_(cfg),
      attention_(cfg.model_dim, cfg.num_heads, cfg.head_dim, rng),
      norm1_(cfg.model_dim),
      ffn1_(Linear::random_init(cfg.model_dim, cfg.ffn_dim, rng)),
      ffn2_(Linear::random_init(cfg.ffn_dim, cfg.model_dim, rng)),
      norm2_(cfg.model_dim) {}

EncoderLayerResult EncoderLayer::forward(
    const MatrixD& x, AttentionBackend backend,
    const GuardedExecutor& executor) const {
  FLASHABFT_ENSURE(x.cols() == cfg_.model_dim);

  // Self-attention block with residual + LayerNorm (Fig. 1 left half).
  MhaResult mha = attention_.forward(x, backend, executor);
  const MatrixD normed1 = norm1_.forward(element_add(x, mha.output));

  // Feed-forward block: Linear -> GELU -> Linear, residual + LayerNorm.
  EncoderLayerResult result;
  result.report = std::move(mha.report);
  const MatrixD inner = gelu_forward(guarded_linear(
      ffn1_, normed1, OpKind::kFfn, 0, executor, result.report));
  const MatrixD ffn =
      guarded_linear(ffn2_, inner, OpKind::kFfn, 1, executor, result.report);

  result.output = norm2_.forward(element_add(normed1, ffn));
  return result;
}

}  // namespace flashabft
