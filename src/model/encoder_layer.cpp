#include "model/encoder_layer.hpp"

namespace flashabft {

EncoderLayer::EncoderLayer(const EncoderLayerConfig& cfg, Rng& rng)
    : cfg_(cfg),
      attention_(cfg.model_dim, cfg.num_heads, cfg.head_dim, rng),
      norm1_(cfg.model_dim),
      ffn1_(Linear::random_init(cfg.model_dim, cfg.ffn_dim, rng)),
      ffn2_(Linear::random_init(cfg.ffn_dim, cfg.model_dim, rng)),
      norm2_(cfg.model_dim) {}

EncoderLayerResult EncoderLayer::forward(const MatrixD& x,
                                         AttentionBackend backend,
                                         const Checker& checker) const {
  FLASHABFT_ENSURE(x.cols() == cfg_.model_dim);

  // Self-attention block with residual + LayerNorm (Fig. 1 left half).
  MhaResult mha = attention_.forward(x, backend, checker);
  MatrixD h1(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      h1(i, j) = x(i, j) + mha.output(i, j);
    }
  }
  const MatrixD normed1 = norm1_.forward(h1);

  // Feed-forward block: Linear -> GELU -> Linear, residual + LayerNorm.
  const MatrixD ffn = ffn2_.forward(gelu_forward(ffn1_.forward(normed1)));
  MatrixD h2(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      h2(i, j) = normed1(i, j) + ffn(i, j);
    }
  }

  EncoderLayerResult result;
  result.output = norm2_.forward(h2);
  result.checks = std::move(mha.checks);
  return result;
}

}  // namespace flashabft
