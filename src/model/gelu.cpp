#include "model/gelu.hpp"

#include <cmath>
#include <numbers>

namespace flashabft {

double gelu(double x) {
  return 0.5 * x * (1.0 + std::erf(x / std::numbers::sqrt2));
}

double gelu_tanh(double x) {
  constexpr double c = 0.044715;
  const double inner =
      std::sqrt(2.0 / std::numbers::pi) * (x + c * x * x * x);
  return 0.5 * x * (1.0 + std::tanh(inner));
}

MatrixD gelu_forward(const MatrixD& x) {
  MatrixD y(x.rows(), x.cols());
  const auto src = x.flat();
  const auto dst = y.flat();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = gelu(src[i]);
  return y;
}

}  // namespace flashabft
