// One encoder-only transformer layer — paper Fig. 1 in code.
//
// "The input embedding is first projected to Query, Key and Value matrices
// ... the output is normalized and added to the input of the attention
// block. The self-attention block is followed by a feed-forward block that
// consists of two fully-connected layers separated by a GELU activation."
// BERT-base stacks twelve of these layers. Under the GuardedOp regime every
// checkable product — Q/K/V/output projections, per-head attention, both
// FFN layers — reports into one LayerReport (GELU and LayerNorm are
// element-wise and remain outside the checked products).
#pragma once

#include "core/guarded_op.hpp"
#include "model/gelu.hpp"
#include "model/layernorm.hpp"
#include "model/linear.hpp"
#include "model/multi_head_attention.hpp"

namespace flashabft {

/// Shape of one encoder layer.
struct EncoderLayerConfig {
  std::size_t model_dim = 768;
  std::size_t num_heads = 12;
  std::size_t head_dim = 64;
  std::size_t ffn_dim = 3072;  ///< inner feed-forward width (4x model_dim).
};

/// Result of a protected forward pass through the layer.
struct EncoderLayerResult {
  MatrixD output;      ///< n x model_dim.
  LayerReport report;  ///< attention + projection + FFN OpReports.
};

/// Post-LN encoder layer: x -> LN(x + MHA(x)) -> LN(. + FFN(.)).
class EncoderLayer {
 public:
  EncoderLayer(const EncoderLayerConfig& cfg, Rng& rng);

  /// Forward pass; attention runs on `backend`, every checkable op executes
  /// through `executor` and reports into the result's LayerReport.
  [[nodiscard]] EncoderLayerResult forward(
      const MatrixD& x, AttentionBackend backend,
      const GuardedExecutor& executor) const;

  [[nodiscard]] const EncoderLayerConfig& config() const { return cfg_; }

 private:
  EncoderLayerConfig cfg_;
  MultiHeadAttention attention_;
  LayerNorm norm1_;
  Linear ffn1_;
  Linear ffn2_;
  LayerNorm norm2_;
};

}  // namespace flashabft
