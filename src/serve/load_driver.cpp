#include "serve/load_driver.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/ensure.hpp"
#include "fault/calibrate.hpp"
#include "sim/multi_head.hpp"
#include "tensor/tensor_ops.hpp"
#include "workload/promptbench.hpp"

namespace flashabft::serve {

ServerConfig make_calibrated_server_config(const ModelPreset& preset,
                                           std::size_t lanes,
                                           std::size_t seq_len_cap,
                                           std::uint64_t seed) {
  ServerConfig config;
  config.accel.lanes = lanes;
  config.accel.head_dim = preset.head_dim;
  config.accel.scale = preset.attention_scale();

  // Fault-free residual calibration over one same-distribution draw per
  // prompt category (capped like the driver's requests, though not the
  // identical inputs), one margin decade above the worst observation.
  std::vector<AttentionInputs> calibration;
  const Rng base(seed);
  std::size_t index = 0;
  for (const PromptCategory& category : prompt_suite()) {
    Rng rng = base.derive(index++);
    calibration.push_back(generate_category_inputs(category, preset,
                                                   rng.next_u64(),
                                                   seq_len_cap));
  }
  config.accel = with_calibrated_thresholds(config.accel, calibration);
  return config;
}

FaultPlan draw_fault_plan(const SiteMap& map, std::size_t total_cycles,
                          bool persistent, Rng& rng) {
  FLASHABFT_ENSURE_MSG(map.total_bits() > 0, "empty fault surface");
  FLASHABFT_ENSURE_MSG(total_cycles > 0, "no cycles to inject into");
  const SiteMap::Draw draw = map.locate(rng.next_below(map.total_bits()));
  const SiteRecord& record = map.records()[draw.record_index];
  InjectedFault fault;
  fault.site = record.site;
  fault.bit = draw.bit;
  fault.cycle = rng.next_below(total_cycles);
  if (persistent) {
    fault.type = rng.next_below(2) == 0 ? FaultType::kStuckAt0
                                        : FaultType::kStuckAt1;
    fault.duration = total_cycles - fault.cycle;
  }
  return {fault};
}

LayerFault draw_layer_fault(const DecoderLayerConfig& layer,
                            const RecoveryPolicy& recovery, double magnitude,
                            bool persistent, Rng& rng) {
  LayerFault fault;
  // Target population mirrors the decoder's op census: 2H attention heads,
  // 8 projections, 2 FFN products.
  const std::size_t heads = 2 * layer.num_heads;
  const std::size_t pick = rng.next_below(heads + 8 + 2);
  if (pick < heads) {
    fault.kind = OpKind::kAttentionFlashAbft;
    fault.op_index = pick;
  } else if (pick < heads + 8) {
    fault.kind = OpKind::kProjection;
    fault.op_index = pick - heads;
  } else {
    fault.kind = OpKind::kFfn;
    fault.op_index = pick - heads - 8;
  }
  fault.faulty_attempts = persistent ? recovery.max_retries + 1 : 1;
  fault.magnitude = magnitude;
  return fault;
}

GenerationStepFault draw_generation_fault(const TransformerConfig& model,
                                          const RecoveryPolicy& recovery,
                                          double magnitude, bool persistent,
                                          std::size_t max_new_tokens,
                                          Rng& rng) {
  GenerationStepFault out;
  out.step = std::size_t(rng.next_below(max_new_tokens));
  // Global-op census of the decoder-only stack: L*H heads, L*4 layer
  // projections + 1 LM head, L*2 FFN products. (kKvCache is excluded —
  // cache faults are injected as real storage upsets, not tampering.)
  const std::size_t heads = model.num_layers * model.num_heads;
  const std::size_t projections = model.num_layers * 4 + 1;
  const std::size_t ffn = model.num_layers * 2;
  const std::size_t pick = rng.next_below(heads + projections + ffn);
  if (pick < heads) {
    out.fault.kind = OpKind::kAttentionFlashAbft;
    out.fault.op_index = pick;
  } else if (pick < heads + projections) {
    out.fault.kind = OpKind::kProjection;
    out.fault.op_index = pick - heads;  // num_layers*4 is the LM head.
  } else {
    out.fault.kind = OpKind::kFfn;
    out.fault.op_index = pick - heads - projections;
  }
  out.fault.faulty_attempts = persistent ? recovery.max_retries + 1 : 1;
  out.fault.magnitude = magnitude;
  return out;
}

KvCorruption draw_kv_corruption(const TransformerConfig& model,
                                std::size_t max_new_tokens, double delta,
                                Rng& rng, bool page_table,
                                bool checksum_state) {
  FLASHABFT_ENSURE_MSG(max_new_tokens >= 2,
                       "a KV corruption needs a decode step to read it");
  KvCorruption out;
  out.step = 1 + std::size_t(rng.next_below(max_new_tokens - 1));
  out.layer = std::size_t(rng.next_below(model.num_layers));
  out.row = std::size_t(rng.next_u64());  // reduced mod len at injection.
  out.col = std::size_t(
      rng.next_below(model.num_heads * model.head_dim));
  out.delta = delta;
  out.value_side = rng.next_below(2) == 1;
  out.page_table = page_table;
  out.checksum_state = checksum_state;
  return out;
}

SessionTamper draw_session_tamper(std::size_t max_new_tokens, Rng& rng) {
  FLASHABFT_ENSURE_MSG(max_new_tokens >= 2,
                       "a token tamper needs a decode step to feed it back");
  SessionTamper out;
  switch (rng.next_below(3)) {
    case 0:
      out.target = SessionTamper::Target::kGeneratedToken;
      // The fed-back token exists from the first decode step on.
      out.step = 1 + std::size_t(rng.next_below(max_new_tokens - 1));
      break;
    case 1:
      out.target = SessionTamper::Target::kPromptToken;
      out.step = 0;  // the prompt is read by the prefill.
      break;
    default:
      out.target = SessionTamper::Target::kMaxNewTokens;
      out.step = std::size_t(rng.next_below(max_new_tokens));
      break;
  }
  out.index = std::size_t(rng.next_u64());  // reduced mod live length.
  out.delta = 1 + std::size_t(rng.next_below(7));
  return out;
}

namespace {

ServeRequest make_attention_request(const LoadDriverConfig& config,
                                    const ModelPreset& preset,
                                    const PromptCategory& category,
                                    const Rng& base, std::size_t serial) {
  ServeRequest request;
  request.id = serial + 1;
  request.category = category.name;
  AttentionWork work;
  work.heads.reserve(config.heads_per_request);
  Rng head_rng = base.derive(serial + 1);
  for (std::size_t h = 0; h < config.heads_per_request; ++h) {
    work.heads.push_back(generate_category_inputs(
        category, preset, head_rng.next_u64(), config.seq_len_cap));
  }
  request.work = std::move(work);
  return request;
}

ServeRequest make_layer_request(const LoadDriverConfig& config,
                                const DecoderLayerConfig& layer,
                                const PromptCategory& category,
                                const Rng& base, std::size_t serial) {
  ServeRequest request;
  request.id = serial + 1;
  request.category = category.name;
  LayerWork work;
  Rng rng = base.derive(serial + 1);
  // Sized from the sampled category (capped), like attention-mode heads —
  // so layer-mode load actually varies across categories.
  const std::size_t rows =
      config.seq_len_cap > 0
          ? std::min(category.seq_len, config.seq_len_cap)
          : category.seq_len;
  work.x = MatrixD(rows, layer.model_dim);
  fill_gaussian(work.x, rng);
  work.memory = MatrixD(config.memory_len, layer.model_dim);
  fill_gaussian(work.memory, rng);
  request.work = std::move(work);
  return request;
}

ServeRequest make_generation_request(const LoadDriverConfig& config,
                                     const TransformerConfig& model,
                                     const PromptCategory& category,
                                     const Rng& base, std::size_t serial) {
  ServeRequest request;
  request.id = serial + 1;
  request.category = category.name;
  GenerationWork work;
  Rng rng = base.derive(serial + 1);
  work.prompt.reserve(config.prompt_len);
  if (config.templates > 0) {
    // Template workload: the stem stream depends only on the template
    // index, so every session of template t carries byte-identical first
    // prefix_len tokens — the shared prefix the KV cache can serve.
    Rng stem_rng = base.derive(0x7E3F1A + serial % config.templates);
    for (std::size_t t = 0; t < config.prefix_len; ++t) {
      work.prompt.push_back(
          std::size_t(stem_rng.next_below(model.vocab_size)));
    }
  }
  while (work.prompt.size() < config.prompt_len) {
    work.prompt.push_back(std::size_t(rng.next_below(model.vocab_size)));
  }
  work.max_new_tokens = config.max_new_tokens;
  request.work = std::move(work);
  return request;
}

}  // namespace

LoadReport run_load(InferenceServer& server, const LoadDriverConfig& config) {
  FLASHABFT_ENSURE_MSG(config.total_requests > 0, "no requests to drive");
  FLASHABFT_ENSURE_MSG(config.concurrency > 0,
                       "concurrency must be positive");
  FLASHABFT_ENSURE_MSG(config.heads_per_request > 0,
                       "requests need at least one head");
  const bool layer_mode = config.mode == RequestMode::kDecoderLayer;
  const bool generation_mode = config.mode == RequestMode::kGeneration;
  const ModelPreset& preset = preset_by_name(config.preset_name);
  if (config.mode == RequestMode::kAttentionHeads) {
    FLASHABFT_ENSURE_MSG(
        preset.head_dim == server.config().accel.head_dim,
        "preset head_dim " << preset.head_dim
                           << " != server accelerator head_dim "
                           << server.config().accel.head_dim);
  }
  if (generation_mode && config.templates > 0) {
    FLASHABFT_ENSURE_MSG(
        config.prefix_len > 0 && config.prefix_len < config.prompt_len,
        "template workload needs 0 < prefix_len (" << config.prefix_len
            << ") < prompt_len (" << config.prompt_len << ")");
  }
  if (generation_mode) {
    FLASHABFT_ENSURE_MSG(config.prompt_len > 0, "empty generation prompt");
    FLASHABFT_ENSURE_MSG(
        config.prompt_len + config.max_new_tokens <=
            server.config().model.max_seq_len,
        "prompt " << config.prompt_len << " + " << config.max_new_tokens
                  << " tokens exceeds model max_seq_len "
                  << server.config().model.max_seq_len);
  }

  const std::vector<PromptCategory>& categories = prompt_suite();
  const Accelerator accel(server.config().accel);
  const SiteMap site_map(server.config().accel, config.inject.sites);
  const Rng base(config.seed);
  Rng inject_rng = base.derive(0xFA117);

  LoadReport report;
  std::vector<double> cached_ttfts, uncached_ttfts;
  const auto absorb = [&](const ServeResponse& response) {
    ++report.completed;
    if (response.checksum_clean) ++report.clean_responses;
    report.tokens_generated += response.tokens.size();
    if (generation_mode) {
      if (response.prefix_cached_tokens > 0) {
        ++report.prefix_cached_responses;
        report.prefix_cached_tokens += response.prefix_cached_tokens;
        cached_ttfts.push_back(response.ttft_us);
      } else {
        uncached_ttfts.push_back(response.ttft_us);
      }
    }
    switch (response.path) {
      case ServePath::kGuardedClean: ++report.guarded_clean; break;
      case ServePath::kGuardedRecovered: ++report.recovered; break;
      case ServePath::kFallbackReference: ++report.fallback; break;
    }
  };

  std::deque<std::future<ServeResponse>> inflight;
  std::size_t submitted = 0;
  const Clock::time_point start = Clock::now();
  while (submitted < config.total_requests || !inflight.empty()) {
    if (submitted < config.total_requests &&
        inflight.size() < config.concurrency) {
      const PromptCategory& category =
          categories[submitted % categories.size()];
      ServeRequest request =
          generation_mode
              ? make_generation_request(config, server.config().model,
                                        category, base, submitted)
          : layer_mode ? make_layer_request(config, server.config().layer,
                                            category, base, submitted)
                       : make_attention_request(config, preset, category,
                                                base, submitted);
      if (config.inject.fault_probability > 0.0 &&
          inject_rng.next_double() < config.inject.fault_probability) {
        bool persistent =
            inject_rng.next_double() < config.inject.persistent_fraction;
        if (generation_mode) {
          GenerationWork& work = std::get<GenerationWork>(request.work);
          const bool corrupt_cache =
              config.max_new_tokens >= 2 &&
              inject_rng.next_double() < config.inject.kv_corruption_fraction;
          if (corrupt_cache) {
            // A storage upset always recovers via the checkpoint —
            // accounted as transient. The page-table / checksum-state site
            // classes only consume draws when their fractions are enabled,
            // so default configs replay the PR 5 stream bit-identically.
            persistent = false;
            const bool page_table =
                config.inject.page_table_fraction > 0.0 &&
                inject_rng.next_double() < config.inject.page_table_fraction;
            const bool checksum_state =
                config.inject.checksum_state_fraction > 0.0 &&
                inject_rng.next_double() <
                    config.inject.checksum_state_fraction;
            work.kv_corruptions.push_back(draw_kv_corruption(
                server.config().model, config.max_new_tokens,
                config.inject.kv_corruption_delta, inject_rng, page_table,
                checksum_state));
          } else if (config.inject.session_tamper_fraction > 0.0 &&
                     config.max_new_tokens >= 2 &&
                     inject_rng.next_double() <
                         config.inject.session_tamper_fraction) {
            // Unprotected-metadata tampers: no checksum covers these, so
            // they are expected SDCs, not recoveries.
            persistent = false;
            work.tampers.push_back(
                draw_session_tamper(config.max_new_tokens, inject_rng));
          } else {
            work.faults.push_back(draw_generation_fault(
                server.config().model, server.config().recovery,
                config.inject.layer_fault_magnitude, persistent,
                config.max_new_tokens, inject_rng));
          }
        } else if (layer_mode) {
          std::get<LayerWork>(request.work)
              .faults.push_back(draw_layer_fault(
                  server.config().layer, server.config().recovery,
                  config.inject.layer_fault_magnitude, persistent,
                  inject_rng));
        } else {
          AttentionWork& work = std::get<AttentionWork>(request.work);
          // Heads of one request share a shape, so the layer-global window
          // is heads * cycles_per_head — the windows run_heads slices.
          const std::size_t layer_cycles =
              config.heads_per_request *
              cycles_per_head(accel, work.heads.front());
          work.faults = draw_fault_plan(site_map, layer_cycles, persistent,
                                        inject_rng);
          work.faults_persistent = persistent;
        }
        ++(persistent ? report.persistent_injected
                      : report.transient_injected);
      }
      inflight.push_back(server.submit(std::move(request)));
      ++submitted;
      continue;
    }
    absorb(inflight.front().get());
    inflight.pop_front();
  }
  const Clock::time_point end = Clock::now();

  report.wall_seconds = std::chrono::duration<double>(end - start).count();
  report.throughput_rps = report.wall_seconds > 0.0
                              ? double(report.completed) / report.wall_seconds
                              : 0.0;
  report.tokens_per_second =
      report.wall_seconds > 0.0
          ? double(report.tokens_generated) / report.wall_seconds
          : 0.0;
  const auto median = [](std::vector<double>& v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  report.cached_ttft_p50_us = median(cached_ttfts);
  report.uncached_ttft_p50_us = median(uncached_ttfts);
  report.telemetry = server.telemetry().snapshot();
  return report;
}

}  // namespace flashabft::serve
