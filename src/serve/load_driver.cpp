#include "serve/load_driver.hpp"

#include <deque>
#include <utility>

#include "common/ensure.hpp"
#include "fault/calibrate.hpp"
#include "sim/multi_head.hpp"
#include "tensor/tensor_ops.hpp"
#include "workload/promptbench.hpp"

namespace flashabft::serve {

ServerConfig make_calibrated_server_config(const ModelPreset& preset,
                                           std::size_t lanes,
                                           std::size_t seq_len_cap,
                                           std::uint64_t seed) {
  ServerConfig config;
  config.accel.lanes = lanes;
  config.accel.head_dim = preset.head_dim;
  config.accel.scale = preset.attention_scale();

  // Fault-free residual calibration over one same-distribution draw per
  // prompt category (capped like the driver's requests, though not the
  // identical inputs), one margin decade above the worst observation.
  std::vector<AttentionInputs> calibration;
  const Rng base(seed);
  std::size_t index = 0;
  for (const PromptCategory& category : prompt_suite()) {
    Rng rng = base.derive(index++);
    calibration.push_back(generate_category_inputs(category, preset,
                                                   rng.next_u64(),
                                                   seq_len_cap));
  }
  config.accel = with_calibrated_thresholds(config.accel, calibration);
  return config;
}

FaultPlan draw_fault_plan(const SiteMap& map, std::size_t total_cycles,
                          bool persistent, Rng& rng) {
  FLASHABFT_ENSURE_MSG(map.total_bits() > 0, "empty fault surface");
  FLASHABFT_ENSURE_MSG(total_cycles > 0, "no cycles to inject into");
  const SiteMap::Draw draw = map.locate(rng.next_below(map.total_bits()));
  const SiteRecord& record = map.records()[draw.record_index];
  InjectedFault fault;
  fault.site = record.site;
  fault.bit = draw.bit;
  fault.cycle = rng.next_below(total_cycles);
  if (persistent) {
    fault.type = rng.next_below(2) == 0 ? FaultType::kStuckAt0
                                        : FaultType::kStuckAt1;
    fault.duration = total_cycles - fault.cycle;
  }
  return {fault};
}

LayerFault draw_layer_fault(const DecoderLayerConfig& layer,
                            const RecoveryPolicy& recovery, double magnitude,
                            bool persistent, Rng& rng) {
  LayerFault fault;
  // Target population mirrors the decoder's op census: 2H attention heads,
  // 8 projections, 2 FFN products.
  const std::size_t heads = 2 * layer.num_heads;
  const std::size_t pick = rng.next_below(heads + 8 + 2);
  if (pick < heads) {
    fault.kind = OpKind::kAttentionFlashAbft;
    fault.op_index = pick;
  } else if (pick < heads + 8) {
    fault.kind = OpKind::kProjection;
    fault.op_index = pick - heads;
  } else {
    fault.kind = OpKind::kFfn;
    fault.op_index = pick - heads - 8;
  }
  fault.faulty_attempts = persistent ? recovery.max_retries + 1 : 1;
  fault.magnitude = magnitude;
  return fault;
}

namespace {

ServeRequest make_attention_request(const LoadDriverConfig& config,
                                    const ModelPreset& preset,
                                    const PromptCategory& category,
                                    const Rng& base, std::size_t serial) {
  ServeRequest request;
  request.id = serial + 1;
  request.category = category.name;
  AttentionWork work;
  work.heads.reserve(config.heads_per_request);
  Rng head_rng = base.derive(serial + 1);
  for (std::size_t h = 0; h < config.heads_per_request; ++h) {
    work.heads.push_back(generate_category_inputs(
        category, preset, head_rng.next_u64(), config.seq_len_cap));
  }
  request.work = std::move(work);
  return request;
}

ServeRequest make_layer_request(const LoadDriverConfig& config,
                                const DecoderLayerConfig& layer,
                                const PromptCategory& category,
                                const Rng& base, std::size_t serial) {
  ServeRequest request;
  request.id = serial + 1;
  request.category = category.name;
  LayerWork work;
  Rng rng = base.derive(serial + 1);
  work.x = MatrixD(config.seq_len_cap, layer.model_dim);
  fill_gaussian(work.x, rng);
  work.memory = MatrixD(config.memory_len, layer.model_dim);
  fill_gaussian(work.memory, rng);
  request.work = std::move(work);
  return request;
}

}  // namespace

LoadReport run_load(InferenceServer& server, const LoadDriverConfig& config) {
  FLASHABFT_ENSURE_MSG(config.total_requests > 0, "no requests to drive");
  FLASHABFT_ENSURE_MSG(config.concurrency > 0,
                       "concurrency must be positive");
  FLASHABFT_ENSURE_MSG(config.heads_per_request > 0,
                       "requests need at least one head");
  const bool layer_mode = config.mode == RequestMode::kDecoderLayer;
  const ModelPreset& preset = preset_by_name(config.preset_name);
  if (!layer_mode) {
    FLASHABFT_ENSURE_MSG(
        preset.head_dim == server.config().accel.head_dim,
        "preset head_dim " << preset.head_dim
                           << " != server accelerator head_dim "
                           << server.config().accel.head_dim);
  }

  const std::vector<PromptCategory>& categories = prompt_suite();
  const Accelerator accel(server.config().accel);
  const SiteMap site_map(server.config().accel, config.inject.sites);
  const Rng base(config.seed);
  Rng inject_rng = base.derive(0xFA117);

  LoadReport report;
  const auto absorb = [&report](const ServeResponse& response) {
    ++report.completed;
    if (response.checksum_clean) ++report.clean_responses;
    switch (response.path) {
      case ServePath::kGuardedClean: ++report.guarded_clean; break;
      case ServePath::kGuardedRecovered: ++report.recovered; break;
      case ServePath::kFallbackReference: ++report.fallback; break;
    }
  };

  std::deque<std::future<ServeResponse>> inflight;
  std::size_t submitted = 0;
  const Clock::time_point start = Clock::now();
  while (submitted < config.total_requests || !inflight.empty()) {
    if (submitted < config.total_requests &&
        inflight.size() < config.concurrency) {
      const PromptCategory& category =
          categories[submitted % categories.size()];
      ServeRequest request =
          layer_mode ? make_layer_request(config, server.config().layer,
                                          category, base, submitted)
                     : make_attention_request(config, preset, category, base,
                                              submitted);
      if (config.inject.fault_probability > 0.0 &&
          inject_rng.next_double() < config.inject.fault_probability) {
        const bool persistent =
            inject_rng.next_double() < config.inject.persistent_fraction;
        if (layer_mode) {
          std::get<LayerWork>(request.work)
              .faults.push_back(draw_layer_fault(
                  server.config().layer, server.config().recovery,
                  config.inject.layer_fault_magnitude, persistent,
                  inject_rng));
        } else {
          AttentionWork& work = std::get<AttentionWork>(request.work);
          // Heads of one request share a shape, so the layer-global window
          // is heads * cycles_per_head — the windows run_heads slices.
          const std::size_t layer_cycles =
              config.heads_per_request *
              cycles_per_head(accel, work.heads.front());
          work.faults = draw_fault_plan(site_map, layer_cycles, persistent,
                                        inject_rng);
          work.faults_persistent = persistent;
        }
        ++(persistent ? report.persistent_injected
                      : report.transient_injected);
      }
      inflight.push_back(server.submit(std::move(request)));
      ++submitted;
      continue;
    }
    absorb(inflight.front().get());
    inflight.pop_front();
  }
  const Clock::time_point end = Clock::now();

  report.wall_seconds = std::chrono::duration<double>(end - start).count();
  report.throughput_rps = report.wall_seconds > 0.0
                              ? double(report.completed) / report.wall_seconds
                              : 0.0;
  report.telemetry = server.telemetry().snapshot();
  return report;
}

}  // namespace flashabft::serve
