#include "serve/session.hpp"

#include <algorithm>
#include <utility>

#include "common/ensure.hpp"

namespace flashabft::serve {

SessionTable::SessionTable(std::size_t max_active, std::size_t max_parked)
    : max_active_(max_active), max_parked_(max_parked) {
  FLASHABFT_ENSURE_MSG(max_active > 0,
                       "session table needs at least one slot");
}

GenerationSession* SessionTable::activate_locked(
    std::unique_ptr<GenerationSession> session) {
  session->key = next_key_++;
  GenerationSession* raw = session.get();
  active_.emplace(raw->key, std::move(session));
  peak_active_ = std::max(peak_active_, active_.size());
  return raw;
}

SessionAdmission SessionTable::admit(
    std::unique_ptr<GenerationSession> session) {
  FLASHABFT_ENSURE(session != nullptr);
  SessionAdmission admission;
  std::lock_guard lock(mutex_);
  if (active_.size() < max_active_) {
    if (parked_.empty()) {
      admission.activated = activate_locked(std::move(session));
    } else {
      // Starvation guard: the free slot goes to the oldest parked session
      // (age-based promotion); the fresh arrival parks behind it. Promoting
      // first also guarantees FIFO room for the newcomer.
      std::unique_ptr<GenerationSession> oldest = std::move(parked_.front());
      parked_.pop_front();
      admission.activated = activate_locked(std::move(oldest));
      parked_.push_back(std::move(session));
      admission.parked = true;
    }
  } else if (parked_.size() < max_parked_) {
    parked_.push_back(std::move(session));
    admission.parked = true;
  } else {
    admission.shed = std::move(session);
  }
  return admission;
}

GenerationSession* SessionTable::find(std::uint64_t key) const {
  std::lock_guard lock(mutex_);
  const auto it = active_.find(key);
  FLASHABFT_ENSURE_MSG(it != active_.end(), "unknown session " << key);
  return it->second.get();
}

std::pair<std::unique_ptr<GenerationSession>, GenerationSession*>
SessionTable::finish(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = active_.find(key);
  FLASHABFT_ENSURE_MSG(it != active_.end(), "unknown session " << key);
  std::unique_ptr<GenerationSession> finished = std::move(it->second);
  active_.erase(it);
  GenerationSession* next = nullptr;
  if (!parked_.empty()) {
    std::unique_ptr<GenerationSession> activated = std::move(parked_.front());
    parked_.pop_front();
    next = activate_locked(std::move(activated));
  }
  return {std::move(finished), next};
}

std::unique_ptr<GenerationSession> SessionTable::release(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = active_.find(key);
  FLASHABFT_ENSURE_MSG(it != active_.end(), "unknown session " << key);
  std::unique_ptr<GenerationSession> finished = std::move(it->second);
  active_.erase(it);
  return finished;
}

GenerationSession* SessionTable::try_activate_parked() {
  std::lock_guard lock(mutex_);
  if (parked_.empty() || active_.size() >= max_active_) return nullptr;
  std::unique_ptr<GenerationSession> oldest = std::move(parked_.front());
  parked_.pop_front();
  return activate_locked(std::move(oldest));
}

std::size_t SessionTable::active() const {
  std::lock_guard lock(mutex_);
  return active_.size();
}

std::size_t SessionTable::parked() const {
  std::lock_guard lock(mutex_);
  return parked_.size();
}

std::size_t SessionTable::peak_active() const {
  std::lock_guard lock(mutex_);
  return peak_active_;
}

}  // namespace flashabft::serve
