// Size- and latency-bounded batch forming over the request queue.
//
// A worker blocks for the first request, then keeps admitting until the
// batch is full or the forming deadline (measured from the first admit)
// expires. The deadline bounds the latency a lone request pays waiting for
// company; the size bound keeps one batch's service time — and therefore
// head-retry and fallback work — predictable.
#pragma once

#include <chrono>
#include <vector>

#include "serve/request_queue.hpp"

namespace flashabft::serve {

struct BatchFormerConfig {
  std::size_t max_batch = 8;  ///< admission cap per batch.
  /// How long to keep admitting after the first request arrives.
  std::chrono::microseconds batch_deadline{200};
};

/// Pops one batch from `queue`. Blocks until at least one request is
/// available; returns an empty vector only when the queue is closed and
/// drained (the worker's shutdown signal).
template <typename T>
[[nodiscard]] std::vector<T> form_batch(BoundedMpmcQueue<T>& queue,
                                        const BatchFormerConfig& config) {
  std::vector<T> batch;
  std::optional<T> first = queue.pop();
  if (!first) return batch;
  batch.push_back(std::move(*first));

  const auto deadline =
      BoundedMpmcQueue<T>::Clock::now() + config.batch_deadline;
  while (batch.size() < config.max_batch) {
    std::optional<T> next = queue.pop_until(deadline);
    if (!next) break;  // deadline hit, or closed and drained.
    batch.push_back(std::move(*next));
  }
  return batch;
}

}  // namespace flashabft::serve
