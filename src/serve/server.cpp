#include "serve/server.hpp"

#include <utility>

#include "attention/attention_config.hpp"
#include "common/ensure.hpp"
#include "core/flash_abft.hpp"
#include "sim/multi_head.hpp"

namespace flashabft::serve {

namespace {

double to_us(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

void append_plan(FaultPlan& plan, const FaultPlan& extra) {
  plan.insert(plan.end(), extra.begin(), extra.end());
}

}  // namespace

const char* serve_path_name(ServePath path) {
  switch (path) {
    case ServePath::kGuardedClean: return "guarded_clean";
    case ServePath::kGuardedRecovered: return "guarded_recovered";
    case ServePath::kFallbackReference: return "fallback_reference";
  }
  return "unknown";
}

InferenceServer::InferenceServer(ServerConfig config)
    : config_(config), queue_(config.queue_capacity) {
  FLASHABFT_ENSURE_MSG(config_.num_workers > 0,
                       "server needs at least one worker");
  FLASHABFT_ENSURE_MSG(config_.batching.max_batch > 0,
                       "max_batch must be positive");
  workers_.reserve(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w) {
    workers_.push_back(
        std::make_unique<Worker>(w, config_.accel, config_.breaker));
  }
  // Threads start only after every Worker exists: worker_loop never sees a
  // half-built pool.
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, &worker] { worker_loop(*worker); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::shutdown() {
  shut_down_.store(true, std::memory_order_release);
  queue_.close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

std::future<ServeResponse> InferenceServer::submit(ServeRequest request) {
  FLASHABFT_ENSURE_MSG(!shut_down_.load(std::memory_order_acquire),
                       "submit after shutdown");
  FLASHABFT_ENSURE_MSG(!request.heads.empty(), "request has no heads");
  if (request.id == 0) {
    request.id = next_auto_id_.fetch_add(1, std::memory_order_relaxed);
  }
  request.enqueue_time = Clock::now();
  Pending pending;
  pending.request = std::move(request);
  std::future<ServeResponse> future = pending.promise.get_future();
  // Counted before the push: once queued, a worker can complete the request
  // (and bump `completed`) before this thread resumes, and a concurrent
  // snapshot must never see completed > submitted.
  telemetry_.on_submit();
  const bool accepted = queue_.push(std::move(pending));
  if (!accepted) {
    telemetry_.on_reject();
    FLASHABFT_ENSURE_MSG(false, "server shut down while submitting");
  }
  return future;
}

bool InferenceServer::try_submit(ServeRequest request,
                                 std::future<ServeResponse>& out) {
  // Invalid requests are a caller bug (same contract as submit()); the
  // rejected counter is reserved for genuine load shedding.
  FLASHABFT_ENSURE_MSG(!request.heads.empty(), "request has no heads");
  if (shut_down_.load(std::memory_order_acquire)) {
    telemetry_.on_reject();
    return false;
  }
  if (request.id == 0) {
    request.id = next_auto_id_.fetch_add(1, std::memory_order_relaxed);
  }
  request.enqueue_time = Clock::now();
  Pending pending;
  pending.request = std::move(request);
  std::future<ServeResponse> future = pending.promise.get_future();
  telemetry_.on_submit();  // before the push — see submit().
  if (!queue_.try_push(std::move(pending))) {
    telemetry_.on_reject();
    return false;
  }
  out = std::move(future);
  return true;
}

void InferenceServer::set_worker_defect(std::size_t worker_id,
                                        FaultPlan defect) {
  FLASHABFT_ENSURE_MSG(worker_id < workers_.size(),
                       "worker " << worker_id << " of " << workers_.size());
  std::lock_guard lock(workers_[worker_id]->defect_mutex);
  workers_[worker_id]->defect = std::move(defect);
}

bool InferenceServer::worker_breaker_open(std::size_t worker_id) const {
  FLASHABFT_ENSURE(worker_id < workers_.size());
  std::lock_guard lock(workers_[worker_id]->breaker_mutex);
  return workers_[worker_id]->breaker.open();
}

std::size_t InferenceServer::worker_breaker_trips(
    std::size_t worker_id) const {
  FLASHABFT_ENSURE(worker_id < workers_.size());
  std::lock_guard lock(workers_[worker_id]->breaker_mutex);
  return workers_[worker_id]->breaker.trips();
}

void InferenceServer::worker_loop(Worker& worker) {
  while (true) {
    std::vector<Pending> batch = form_batch(queue_, config_.batching);
    if (batch.empty()) return;  // queue closed and drained.
    telemetry_.on_batch();
    for (Pending& pending : batch) {
      // A malformed request (e.g. head shapes that don't match the
      // accelerator) must fail its own future, not escape the thread and
      // terminate the whole server.
      try {
        ServeResponse response =
            execute(worker, pending.request, batch.size());
        telemetry_.on_response(response);
        pending.promise.set_value(std::move(response));
      } catch (...) {
        pending.promise.set_exception(std::current_exception());
      }
    }
  }
}

ServeResponse InferenceServer::execute(Worker& worker, ServeRequest& request,
                                       std::size_t batch_size) {
  const Clock::time_point start = Clock::now();
  ServeResponse response;
  response.id = request.id;
  response.worker_id = worker.id;
  response.batch_size = batch_size;
  if (request.enqueue_time != Clock::time_point{}) {
    response.queue_us = to_us(start - request.enqueue_time);
  }

  FaultPlan defect;
  {
    std::lock_guard lock(worker.defect_mutex);
    defect = worker.defect;
  }
  bool bypass;
  {
    std::lock_guard lock(worker.breaker_mutex);
    bypass = worker.breaker.should_bypass();
  }

  const CompareGranularity granularity = config_.accel.compare_granularity;
  const Checker fallback_checker(config_.fallback_checker);
  const auto serve_reference = [&](const AttentionInputs& head,
                                   bool& clean) -> MatrixD {
    AttentionConfig cfg;
    cfg.seq_len = head.seq_len();
    cfg.head_dim = head.head_dim();
    cfg.scale = config_.accel.scale;
    cfg.mask = config_.accel.mask;
    CheckedAttention fb = flash_abft_attention(head.q, head.k, head.v, cfg);
    clean = clean && fallback_checker.compare(fb.predicted_checksum,
                                              fb.actual_checksum) ==
                         CheckVerdict::kPass;
    ++response.fallback_heads;
    return std::move(fb.output);
  };

  bool clean = true;
  response.outputs.reserve(request.heads.size());

  if (bypass) {
    // Breaker open: this worker's accelerator is a persistent-defect
    // suspect; serve the whole layer from the reference kernel.
    telemetry_.on_breaker_bypass();
    response.path = ServePath::kFallbackReference;
    for (const AttentionInputs& head : request.heads) {
      response.outputs.push_back(serve_reference(head, clean));
    }
  } else {
    FaultPlan first_plan = request.faults;
    append_plan(first_plan, defect);
    MultiHeadRunResult run =
        run_heads(worker.accel, request.heads, first_plan);
    response.head_executions += request.heads.size();
    std::vector<std::size_t> alarming = run.alarming_heads(granularity);
    response.alarm_events += alarming.size();

    std::size_t retries = 0;
    while (!alarming.empty() && retries < config_.recovery.max_retries) {
      ++retries;
      // A transient upset does not repeat; a persistent plan (and any
      // standing worker defect) is applied to the retry as well.
      FaultPlan retry_plan =
          request.faults_persistent ? request.faults : FaultPlan{};
      append_plan(retry_plan, defect);
      run = rerun_alarming_heads(worker.accel, request.heads, run,
                                 granularity, retry_plan);
      response.head_executions += alarming.size();
      alarming = run.alarming_heads(granularity);
      response.alarm_events += alarming.size();
    }

    if (alarming.empty()) {
      response.path = retries == 0 ? ServePath::kGuardedClean
                                   : ServePath::kGuardedRecovered;
      for (AccelRunResult& head : run.heads) {
        response.outputs.push_back(std::move(head.output));
      }
      {
        std::lock_guard lock(worker.breaker_mutex);
        worker.breaker.record_success();
      }
    } else {
      // Retries exhausted: persistent-fault suspect. Clean heads are
      // accepted; the still-alarming ones fall back to the reference
      // kernel, which carries its own checksum.
      response.path = ServePath::kFallbackReference;
      telemetry_.on_escalation();
      bool tripped;
      {
        std::lock_guard lock(worker.breaker_mutex);
        tripped = worker.breaker.record_escalation();
      }
      if (tripped) telemetry_.on_breaker_trip();
      std::size_t next_alarm = 0;  // alarming_heads() is ascending.
      for (std::size_t h = 0; h < request.heads.size(); ++h) {
        if (next_alarm < alarming.size() && alarming[next_alarm] == h) {
          ++next_alarm;
          response.outputs.push_back(
              serve_reference(request.heads[h], clean));
        } else {
          response.outputs.push_back(std::move(run.heads[h].output));
        }
      }
    }
  }

  response.checksum_clean = clean;
  const Clock::time_point end = Clock::now();
  response.service_us = to_us(end - start);
  response.total_us = response.queue_us + response.service_us;
  return response;
}

}  // namespace flashabft::serve
