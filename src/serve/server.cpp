#include "serve/server.hpp"

#include <utility>

#include "attention/attention_config.hpp"
#include "common/ensure.hpp"
#include "core/flash_abft.hpp"
#include "fault/calibrate.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "serve/fault_surface.hpp"
#include "sim/multi_head.hpp"

namespace flashabft::serve {

namespace {

double to_us(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

void append_plan(FaultPlan& plan, const FaultPlan& extra) {
  plan.insert(plan.end(), extra.begin(), extra.end());
}

}  // namespace

const char* serve_path_name(ServePath path) {
  switch (path) {
    case ServePath::kGuardedClean: return "guarded_clean";
    case ServePath::kGuardedRecovered: return "guarded_recovered";
    case ServePath::kFallbackReference: return "fallback_reference";
  }
  return "unknown";
}

const char* submit_result_name(SubmitResult result) {
  switch (result) {
    case SubmitResult::kAccepted: return "accepted";
    case SubmitResult::kQueueFull: return "queue_full";
    case SubmitResult::kShutDown: return "shut_down";
  }
  return "unknown";
}

InferenceServer::InferenceServer(ServerConfig config)
    : config_(config),
      queue_(config.queue_capacity),
      sessions_(config.max_sessions, config.queue_capacity) {
  FLASHABFT_ENSURE_MSG(config_.num_workers > 0,
                       "server needs at least one worker");
  FLASHABFT_ENSURE_MSG(config_.batching.max_batch > 0,
                       "max_batch must be positive");
  // One dtype knob governs the whole software stack: the lazily-built
  // layer/model quantize their weights at construction and the executors
  // (executor_options below) judge with matching derived tolerances.
  config_.layer.dtype = config_.dtype;
  config_.model.dtype = config_.dtype;
  telemetry_.set_compute(config_.compute);
  workers_.reserve(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w) {
    workers_.push_back(
        std::make_unique<Worker>(w, config_.accel, config_.breaker));
  }
  // Threads start only after every Worker exists: worker_loop never sees a
  // half-built pool.
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, &worker] { worker_loop(*worker); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::shutdown() {
  shut_down_.store(true, std::memory_order_release);
  queue_.close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // After the workers: the scheduler drains every admitted session itself.
  // The no-op call_once claims the flag if no session ever arrived, so a
  // submit racing this shutdown cannot construct a scheduler afterwards
  // (it observes the claimed flag and fails like a closed-queue submit).
  if (config_.scheduler.mode == SchedulerMode::kContinuous) {
    std::call_once(scheduler_once_, [] {});
    if (scheduler_ != nullptr) scheduler_->shutdown();
  }
}

const DecoderLayer& InferenceServer::layer() const {
  std::call_once(layer_once_, [this] {
    Rng rng(config_.layer_seed);
    layer_ = std::make_unique<DecoderLayer>(config_.layer, rng);
  });
  return *layer_;
}

const TransformerModel& InferenceServer::model() const {
  std::call_once(model_once_, [this] {
    model_ =
        std::make_unique<TransformerModel>(config_.model, config_.model_seed);
  });
  return *model_;
}

ContinuousScheduler& InferenceServer::scheduler() {
  std::call_once(scheduler_once_, [this] {
    FLASHABFT_ENSURE(config_.scheduler.mode == SchedulerMode::kContinuous);
    SchedulerConfig cfg = config_.scheduler;
    // Same thread budget as the legacy engine it replaces (the comparison
    // and the CI baseline stay apples-to-apples), capped at what the
    // machine can actually run in parallel — extra sweep threads on fewer
    // cores are pure spawn/context-switch overhead per tick.
    if (cfg.sweep_threads == 0) {
      cfg.sweep_threads = config_.num_workers;
      const std::size_t cores = std::thread::hardware_concurrency();
      if (cores > 0) cfg.sweep_threads = std::min(cfg.sweep_threads, cores);
    }
    // The server's observability taps ride into the scheduler's own emit
    // sites (tick spans, preemption/resume flight events).
    cfg.trace = config_.trace;
    cfg.flight = config_.flight;
    scheduler_ = std::make_unique<ContinuousScheduler>(
        cfg, model(), executor_options(), sessions_, telemetry_);
  });
  // Null only when shutdown() claimed the flag first (see shutdown()).
  FLASHABFT_ENSURE_MSG(scheduler_ != nullptr,
                       "server shut down while submitting");
  return *scheduler_;
}

InferenceServer::Pending InferenceServer::make_pending(ServeRequest request) {
  // Invalid payloads are a caller bug on both submit paths (the rejected
  // counter is reserved for genuine load shedding).
  if (const auto* attention = std::get_if<AttentionWork>(&request.work)) {
    FLASHABFT_ENSURE_MSG(!attention->heads.empty(), "request has no heads");
  } else if (const auto* generation =
                 std::get_if<GenerationWork>(&request.work)) {
    FLASHABFT_ENSURE_MSG(!generation->prompt.empty(),
                         "generation request has an empty prompt");
    FLASHABFT_ENSURE_MSG(generation->max_new_tokens > 0,
                         "generation request asks for zero tokens");
    FLASHABFT_ENSURE_MSG(
        generation->prompt.size() + generation->max_new_tokens <=
            config_.model.max_seq_len,
        "prompt " << generation->prompt.size() << " + "
                  << generation->max_new_tokens
                  << " new tokens exceeds model max_seq_len "
                  << config_.model.max_seq_len);
    for (const std::size_t id : generation->prompt) {
      FLASHABFT_ENSURE_MSG(id < config_.model.vocab_size,
                           "prompt token " << id << " outside vocab "
                                           << config_.model.vocab_size);
    }
  } else if (std::holds_alternative<DecodeStepWork>(request.work)) {
    FLASHABFT_ENSURE_MSG(false,
                         "DecodeStepWork is an internal continuation");
  } else {
    const auto& layer_work = std::get<LayerWork>(request.work);
    FLASHABFT_ENSURE_MSG(
        layer_work.x.rows() > 0 &&
            layer_work.x.cols() == config_.layer.model_dim,
        "layer request x is " << layer_work.x.rows() << " x "
                              << layer_work.x.cols() << ", layer model_dim "
                              << config_.layer.model_dim);
    FLASHABFT_ENSURE_MSG(
        layer_work.memory.rows() > 0 &&
            layer_work.memory.cols() == config_.layer.model_dim,
        "layer request memory is " << layer_work.memory.rows() << " x "
                                   << layer_work.memory.cols()
                                   << ", layer model_dim "
                                   << config_.layer.model_dim);
  }
  if (request.id == 0) {
    request.id = next_auto_id_.fetch_add(1, std::memory_order_relaxed);
  }
  request.enqueue_time = Clock::now();
  Pending pending;
  pending.request = std::move(request);
  return pending;
}

std::future<ServeResponse> InferenceServer::submit(ServeRequest request) {
  FLASHABFT_ENSURE_MSG(!shut_down_.load(std::memory_order_acquire),
                       "submit after shutdown");
  Pending pending = make_pending(std::move(request));
  std::future<ServeResponse> future = pending.promise.get_future();
  // Counted before the push: once queued, a worker can complete the request
  // (and bump `completed`) before this thread resumes, and a concurrent
  // snapshot must never see completed > submitted.
  telemetry_.on_submit();
  if (config_.scheduler.mode == SchedulerMode::kContinuous &&
      std::holds_alternative<GenerationWork>(pending.request.work)) {
    // Continuous mode: generation sessions bypass the worker queue —
    // admission control is the SessionTable, backpressure the paged pool.
    admit_continuous(std::move(pending));
    return future;
  }
  const bool accepted = queue_.push(std::move(pending));
  if (!accepted) {
    telemetry_.on_reject();
    FLASHABFT_ENSURE_MSG(false, "server shut down while submitting");
  }
  return future;
}

SubmitResult InferenceServer::try_submit(ServeRequest request,
                                         std::future<ServeResponse>& out) {
  if (shut_down_.load(std::memory_order_acquire)) {
    telemetry_.on_reject();
    return SubmitResult::kShutDown;
  }
  Pending pending = make_pending(std::move(request));
  std::future<ServeResponse> future = pending.promise.get_future();
  telemetry_.on_submit();  // before the push — see submit().
  if (config_.scheduler.mode == SchedulerMode::kContinuous &&
      std::holds_alternative<GenerationWork>(pending.request.work)) {
    // Same admission semantics as the legacy path: the request is accepted
    // and a table-full shed fails its future (counted as a rejection).
    admit_continuous(std::move(pending));
    out = std::move(future);
    return SubmitResult::kAccepted;
  }
  if (!queue_.try_push(std::move(pending))) {
    telemetry_.on_reject();
    // try_push fails for a full queue or a closed one; a close racing this
    // call must surface as the typed shutdown reason, not as load shedding.
    return queue_.closed() ? SubmitResult::kShutDown
                           : SubmitResult::kQueueFull;
  }
  out = std::move(future);
  return SubmitResult::kAccepted;
}

std::unique_ptr<GenerationSession> InferenceServer::make_session(
    Pending pending) {
  auto session = std::make_unique<GenerationSession>();
  session->id = pending.request.id;
  session->category = std::move(pending.request.category);
  session->work = std::move(std::get<GenerationWork>(pending.request.work));
  session->seal_meta();
  session->promise = std::move(pending.promise);
  session->enqueue_time = pending.request.enqueue_time;
  return session;
}

void InferenceServer::admit_continuous(Pending pending) {
  // Resolve the scheduler first: if shutdown won the construction race
  // this throws to the submitter before any session enters the table —
  // counted as a rejection so submitted == completed + rejected still
  // reconciles (the legacy closed-queue path pairs its throw the same way).
  ContinuousScheduler* engine = nullptr;
  try {
    engine = &scheduler();
  } catch (...) {
    telemetry_.on_reject();
    throw;
  }
  std::unique_ptr<GenerationSession> session =
      make_session(std::move(pending));
  SessionAdmission admission;
  if (!engine->admit(session, admission)) {
    // Shutdown already decided the drain: admitting now would orphan the
    // session's future, so it fails like a closed-queue submit.
    telemetry_.on_reject();
    session->promise.set_exception(std::make_exception_ptr(
        EnsureError("server shut down while submitting")));
    return;
  }
  if (admission.shed != nullptr) {
    telemetry_.on_reject();
    admission.shed->promise.set_exception(std::make_exception_ptr(
        EnsureError("generation session load-shed: session table full")));
    return;
  }
  // on_session_start is the scheduler thread's to emit (it must precede
  // on_session_complete, and the session may already be running).
  if (admission.parked) telemetry_.on_session_parked();
}

void InferenceServer::set_worker_defect(std::size_t worker_id,
                                        FaultPlan defect) {
  FLASHABFT_ENSURE_MSG(worker_id < workers_.size(),
                       "worker " << worker_id << " of " << workers_.size());
  std::lock_guard lock(workers_[worker_id]->defect_mutex);
  workers_[worker_id]->defect = std::move(defect);
}

bool InferenceServer::worker_breaker_open(std::size_t worker_id) const {
  FLASHABFT_ENSURE(worker_id < workers_.size());
  std::lock_guard lock(workers_[worker_id]->breaker_mutex);
  return workers_[worker_id]->breaker.open();
}

std::size_t InferenceServer::worker_breaker_trips(
    std::size_t worker_id) const {
  FLASHABFT_ENSURE(worker_id < workers_.size());
  std::lock_guard lock(workers_[worker_id]->breaker_mutex);
  return workers_[worker_id]->breaker.trips();
}

void InferenceServer::worker_loop(Worker& worker) {
  while (true) {
    std::vector<Pending> batch = form_batch(queue_, config_.batching);
    if (batch.empty()) return;  // queue closed and drained.
    telemetry_.on_batch();
    for (Pending& pending : batch) {
      // Session work manages its own promise (it lives with the session
      // across continuations) and its own error reporting.
      if (std::holds_alternative<GenerationWork>(pending.request.work) ||
          std::holds_alternative<DecodeStepWork>(pending.request.work)) {
        handle_generation(worker, std::move(pending), batch.size());
        continue;
      }
      // A malformed request (e.g. head shapes that don't match the
      // accelerator) must fail its own future, not escape the thread and
      // terminate the whole server.
      try {
        ServeResponse response =
            execute(worker, pending.request, batch.size());
        telemetry_.on_response(response);
        pending.promise.set_value(std::move(response));
      } catch (...) {
        pending.promise.set_exception(std::current_exception());
      }
    }
  }
}

GuardedExecutor::Options InferenceServer::executor_options() const {
  GuardedExecutor::Options options;
  options.checker = config_.software_checker;
  options.recovery = config_.recovery;
  options.screen_extremes = config_.screen_extremes;
  options.screen = config_.screen;
  options.compute = config_.compute;
  options.dmr_glue = config_.dmr_glue;
  options.dtype = config_.dtype;
  // Low-precision storage needs thresholds derived for it (the single
  // hand-set checker would false-alarm on quantization residuals); kF32
  // keeps the legacy single-checker judging bit-identical.
  if (config_.dtype != DType::kF32) {
    options.tolerances = derive_tolerances(
        config_.dtype, tolerance_shape_for(config_.model));
  }
  // Every executor this server builds feeds the telemetry's always-on
  // guard-phase profiler; trace/flight taps ride along when the caller
  // attached them to the config.
  options.obs.trace = config_.trace;
  options.obs.flight = config_.flight;
  options.obs.profiler = telemetry_.op_profiler();
  return options;
}

GuardedExecutor InferenceServer::make_executor() const {
  return GuardedExecutor(executor_options());
}

ServeResponse InferenceServer::execute(Worker& worker, ServeRequest& request,
                                       std::size_t batch_size) {
  const Clock::time_point start = Clock::now();
  ServeResponse response;
  response.id = request.id;
  response.worker_id = worker.id;
  response.batch_size = batch_size;
  if (request.enqueue_time != Clock::time_point{}) {
    response.queue_us = to_us(start - request.enqueue_time);
  }

  if (const auto* attention = std::get_if<AttentionWork>(&request.work)) {
    execute_attention(worker, *attention, response);
  } else {
    execute_layer(std::get<LayerWork>(request.work), response);
  }

  const Clock::time_point end = Clock::now();
  response.service_us = to_us(end - start);
  response.total_us = response.queue_us + response.service_us;
  return response;
}

void InferenceServer::execute_attention(Worker& worker,
                                        const AttentionWork& work,
                                        ServeResponse& response) {
  FaultPlan defect;
  {
    std::lock_guard lock(worker.defect_mutex);
    defect = worker.defect;
  }
  bool bypass;
  {
    std::lock_guard lock(worker.breaker_mutex);
    bypass = worker.breaker.should_bypass();
  }

  const CompareGranularity granularity = config_.accel.compare_granularity;
  const GuardedExecutor executor = make_executor();
  const std::size_t head_count = work.heads.size();
  const double cost_per_head =
      2.0 * double(work.heads.front().num_queries()) *
      double(work.heads.front().seq_len()) *
      double(work.heads.front().head_dim());

  // Escalated or bypassed heads are served by the software Alg. 3 kernel,
  // verified by its own fused checksum.
  const auto reference_one = [&](std::size_t h) {
    const AttentionInputs& head = work.heads[h];
    AttentionConfig cfg;
    cfg.seq_len = head.seq_len();
    cfg.head_dim = head.head_dim();
    cfg.scale = config_.accel.scale;
    cfg.mask = config_.accel.mask;
    CheckedAttention fb = flash_abft_attention(head.q, head.k, head.v, cfg);
    CheckedOp op;
    op.output = std::move(fb.output);
    op.check = {fb.predicted_checksum, fb.actual_checksum};
    return op;
  };

  if (bypass) {
    // Breaker open: this worker's accelerator is a persistent-defect
    // suspect; serve the whole layer from the reference kernel.
    telemetry_.on_breaker_bypass();
    WorklistResult served =
        executor.run_all_fallback(head_count, cost_per_head, reference_one);
    response.path = ServePath::kFallbackReference;
    response.outputs = std::move(served.outputs);
    response.reports = std::move(served.reports);
    response.fallback_ops = served.fallback_ops;
    response.checksum_clean = served.all_clean;
    return;
  }

  FaultPlan first_plan = work.faults;
  append_plan(first_plan, defect);
  // A transient upset does not repeat; a persistent plan (and any standing
  // worker defect) is applied to every retry as well.
  FaultPlan retry_plan = work.faults_persistent ? work.faults : FaultPlan{};
  append_plan(retry_plan, defect);

  MultiHeadRunResult run;
  const auto run_round = [&](std::size_t attempt,
                             const std::vector<std::size_t>& indices) {
    run = attempt == 0
              ? run_heads(worker.accel, work.heads, first_plan)
              : rerun_alarming_heads(worker.accel, work.heads, run,
                                     granularity, retry_plan);
    std::vector<CheckedOp> ops;
    ops.reserve(indices.size());
    for (const std::size_t h : indices) {
      AccelRunResult& head = run.heads[h];
      CheckedOp op;
      // Moved, not copied: rerun_alarming_heads only reads the previous
      // round's alarm flags (and re-runs produce fresh outputs), so `run`
      // never needs a head output after it is handed to the executor.
      op.output = std::move(head.output);
      op.check = {head.global_pred, head.global_actual};
      // The accelerator's in-hardware checker (calibrated thresholds,
      // configured granularity) is the verdict source.
      op.self_verdict = head.alarm(granularity) ? CheckVerdict::kAlarm
                                                : CheckVerdict::kPass;
      ops.push_back(std::move(op));
    }
    return ops;
  };

  WorklistResult served = executor.run_worklist(
      OpKind::kAttentionFlashAbft, head_count, cost_per_head, run_round,
      reference_one);

  if (served.escalated) {
    // Retries exhausted on this device: persistent-fault suspect.
    telemetry_.on_escalation();
    bool tripped;
    {
      std::lock_guard lock(worker.breaker_mutex);
      tripped = worker.breaker.record_escalation();
    }
    if (tripped) {
      telemetry_.on_breaker_trip();
      if (config_.flight != nullptr) {
        config_.flight->record(obs::FlightEventKind::kBreakerTrip, "server",
                               "worker", worker.id);
      }
    }
    response.path = ServePath::kFallbackReference;
  } else {
    {
      std::lock_guard lock(worker.breaker_mutex);
      worker.breaker.record_success();
    }
    response.path = served.recovered_ops > 0 ? ServePath::kGuardedRecovered
                                             : ServePath::kGuardedClean;
  }
  response.outputs = std::move(served.outputs);
  response.reports = std::move(served.reports);
  response.op_executions = served.executions;
  response.alarm_events = served.alarm_events;
  response.fallback_ops = served.fallback_ops;
  response.checksum_clean = served.all_clean;
}

void InferenceServer::execute_layer(const LayerWork& work,
                                    ServeResponse& response) {
  GuardedExecutor executor = make_executor();
  if (!work.faults.empty()) {
    executor.set_tamper(make_layer_fault_tamper(work.faults));
  }

  DecoderLayerResult out =
      layer().forward(work.x, work.memory, AttentionBackend::kFlashAbft,
                      executor);
  response.outputs.push_back(std::move(out.output));
  response.op_executions = out.report.executions();
  response.alarm_events = out.report.alarm_events();
  response.fallback_ops = out.report.count(OpKind::kReferenceFallback);
  response.checksum_clean = out.report.all_accepted_clean();
  bool recovered = false;
  bool escalated = false;
  for (const OpReport& r : out.report.ops) {
    recovered = recovered || r.recovery == RecoveryStatus::kRecovered;
    escalated = escalated || (r.recovery == RecoveryStatus::kEscalated &&
                              r.kind != OpKind::kReferenceFallback);
  }
  // Same per-request semantics as the attention path's worklist: a layer
  // with any retries-exhausted op counts one escalation (the breaker is
  // not fed — the software path never touched this worker's device).
  if (escalated) telemetry_.on_escalation();
  response.path = response.fallback_ops > 0 ? ServePath::kFallbackReference
                  : recovered               ? ServePath::kGuardedRecovered
                                            : ServePath::kGuardedClean;
  response.reports = std::move(out.report.ops);
}

void InferenceServer::handle_generation(Worker& worker, Pending pending,
                                        std::size_t batch_size) {
  if (std::holds_alternative<GenerationWork>(pending.request.work)) {
    SessionAdmission admission =
        sessions_.admit(make_session(std::move(pending)));
    if (admission.shed != nullptr) {
      // Active set and parking FIFO both full: generation load shedding.
      telemetry_.on_reject();
      admission.shed->promise.set_exception(std::make_exception_ptr(
          EnsureError("generation session load-shed: session table full")));
      return;
    }
    if (admission.parked) {
      // Session bound reached (or an older parked session was promoted
      // into the free slot by the starvation guard): this one waits in the
      // table's FIFO until a completing worker activates it.
      telemetry_.on_session_parked();
    }
    if (admission.activated == nullptr) return;
    telemetry_.on_session_start();
    drive_session(worker, admission.activated, batch_size);
    return;
  }
  const std::uint64_t key =
      std::get<DecodeStepWork>(pending.request.work).session_id;
  drive_session(worker, sessions_.find(key), batch_size);
}

void InferenceServer::drive_session(Worker& worker,
                                    GenerationSession* session,
                                    std::size_t batch_size) {
  while (session != nullptr) {
    bool done = false;
    try {
      done = execute_session_step(worker, *session, batch_size);
    } catch (...) {
      // A failing step fails its own session, not the worker thread.
      session->promise.set_exception(std::current_exception());
      auto [failed, next] = sessions_.finish(session->key);
      session = next;
      if (session != nullptr) telemetry_.on_session_start();
      batch_size = 1;
      continue;
    }
    if (!done) {
      ServeRequest continuation;
      continuation.id = session->id;
      continuation.category = session->category;
      continuation.work = DecodeStepWork{session->key};
      Pending next_step;
      next_step.request = std::move(continuation);
      if (queue_.try_push(std::move(next_step))) return;  // handed off.
      // Queue full (or closed during shutdown drain): keep driving this
      // session inline so it still completes.
      batch_size = 1;
      continue;
    }
    session = finalize_session(*session);
    if (session != nullptr) telemetry_.on_session_start();
    batch_size = 1;
  }
}

bool InferenceServer::execute_session_step(Worker& worker,
                                           GenerationSession& session,
                                           std::size_t batch_size) {
  const Clock::time_point start = Clock::now();
  const bool is_prefill = session.tokens().empty();
  obs::TraceSpan step_span(config_.trace,
                           is_prefill ? "prefill" : "decode-step");
  // Step numbering of the fault surfaces: 0 = prefill, s >= 1 = the s-th
  // decode step.
  const std::size_t step_index = is_prefill ? 0 : session.steps_done() + 1;

  GuardedExecutor executor = make_generation_step_executor(
      session.work, step_index, executor_options());
  // Session-metadata tampers land before the step reads any of it (the
  // prompt for a prefill, the fed-back token and budget for a decode step).
  // They write through the record's raw() backdoor, so the boundary verify
  // right after catches the stale seal and repairs from the mirror.
  apply_session_tampers(session.work, session.meta.raw(), step_index,
                        config_.model.vocab_size);
  (void)verify_session_meta(session);

  const TransformerModel& m = model();
  if (is_prefill) {
    session.cache = std::make_unique<KvCache>(m.make_cache());
    if (session.enqueue_time != Clock::time_point{}) {
      session.queue_us = to_us(start - session.enqueue_time);
    }
  } else {
    // A latent upset lands at the start of the session's idle window; the
    // inline scrub passes (the legacy engine's stand-in for the continuous
    // scheduler's background scrubber) must heal it before this step reads
    // the cache.
    if (has_latent_corruption(session.work, step_index)) {
      apply_kv_corruptions(session.work, step_index, *session.cache,
                           /*latent=*/true);
      absorb_idle_scrub(session,
                        scrub_idle_window(*session.cache, session.meta,
                                          session.work.latent_idle_ticks,
                                          make_executor()));
    }
    // Storage upsets scheduled between steps land now, before this step
    // reads the cache (its kKvCache check must catch and repair them).
    apply_kv_corruptions(session.work, step_index, *session.cache);
  }

  StepResult step =
      is_prefill ? m.prefill(session.prompt(), AttentionBackend::kFlashAbft,
                             executor, *session.cache)
                 : m.decode_step(session.tokens().back(),
                                 AttentionBackend::kFlashAbft, executor,
                                 *session.cache);

  session.push_token(step.next_token);
  session.final_logits = std::move(step.logits);
  if (!is_prefill) session.count_step();
  session.dmr_compares += step.report.dmr_compares();
  session.dmr_mismatches += step.report.dmr_mismatches();
  session.op_executions += step.report.executions();
  session.alarm_events += step.report.alarm_events();
  session.fallback_ops += step.report.fallback_ops();
  session.recovered_ops += step.report.recovered_ops();
  if (step.report.escalated_ops() > 0) telemetry_.on_escalation();
  session.checksum_clean =
      session.checksum_clean && step.report.all_accepted_clean();
  std::vector<OpReport> flat = step.report.flatten();
  session.all_reports.insert(session.all_reports.end(),
                             std::make_move_iterator(flat.begin()),
                             std::make_move_iterator(flat.end()));
  session.worker_id = worker.id;
  session.batch_size = batch_size;

  const Clock::time_point end = Clock::now();
  session.service_us += to_us(end - start);
  if (is_prefill) {
    session.ttft_us = session.enqueue_time != Clock::time_point{}
                          ? to_us(end - session.enqueue_time)
                          : session.service_us;
  }
  return session.done();
}

bool InferenceServer::verify_session_meta(GenerationSession& session) {
  ++session.meta_verifies;
  LayerReport report;
  const bool clean =
      guarded_meta_verify(session.meta, /*index=*/0, make_executor(), report);
  const OpReport& op = report.ops.front();
  // A clean first-try verify happens every step of every session; folding
  // each into the op stream would drown the fault reports, so only alarmed
  // verifies are absorbed (clean ones are visible via meta_verifies).
  if (op.alarms == 0 && op.verdict == CheckVerdict::kPass) return clean;
  session.op_executions += report.executions();
  session.alarm_events += report.alarm_events();
  if (op.recovery == RecoveryStatus::kRecovered) ++session.recovered_ops;
  if (op.recovery == RecoveryStatus::kEscalated) telemetry_.on_escalation();
  session.checksum_clean =
      session.checksum_clean && report.all_accepted_clean();
  session.all_reports.insert(session.all_reports.end(),
                             std::make_move_iterator(report.ops.begin()),
                             std::make_move_iterator(report.ops.end()));
  return clean;
}

void InferenceServer::absorb_idle_scrub(GenerationSession& session,
                                        IdleScrubOutcome outcome) {
  session.scrub_faults_found += outcome.faults_found;
  session.scrub_repairs += outcome.repairs;
  for (const OpReport& op : outcome.reports) {
    session.op_executions += op.executions;
    session.alarm_events += op.alarms;
    if (op.recovery == RecoveryStatus::kRecovered) ++session.recovered_ops;
    if (op.recovery == RecoveryStatus::kEscalated &&
        op.kind != OpKind::kReferenceFallback) {
      telemetry_.on_escalation();
    }
  }
  session.checksum_clean = session.checksum_clean && outcome.clean;
  session.all_reports.insert(
      session.all_reports.end(),
      std::make_move_iterator(outcome.reports.begin()),
      std::make_move_iterator(outcome.reports.end()));
}

GenerationSession* InferenceServer::finalize_session(
    GenerationSession& session) {
  ServeResponse response;
  response.id = session.id;
  response.worker_id = session.worker_id;
  response.batch_size = session.batch_size;
  response.tokens = session.tokens();
  response.decode_steps = session.steps_done();
  response.final_logits = std::move(session.final_logits);
  response.ttft_us = session.ttft_us;
  response.queue_us = session.queue_us;
  response.service_us = session.service_us;
  response.total_us = session.enqueue_time != Clock::time_point{}
                          ? to_us(Clock::now() - session.enqueue_time)
                          : session.service_us;
  response.reports = std::move(session.all_reports);
  response.op_executions = session.op_executions;
  response.alarm_events = session.alarm_events;
  response.fallback_ops = session.fallback_ops;
  response.checksum_clean = session.checksum_clean;
  response.meta_verifies = session.meta_verifies;
  response.scrub_faults_found = session.scrub_faults_found;
  response.scrub_repairs = session.scrub_repairs;
  response.dmr_compares = session.dmr_compares;
  response.dmr_mismatches = session.dmr_mismatches;
  response.path = session.fallback_ops > 0 ? ServePath::kFallbackReference
                  : session.recovered_ops > 0
                      ? ServePath::kGuardedRecovered
                      : ServePath::kGuardedClean;
  telemetry_.on_response(response);
  telemetry_.on_session_complete(response);
  auto [finished, next] = sessions_.finish(session.key);
  finished->promise.set_value(std::move(response));
  return next;
}

}  // namespace flashabft::serve
