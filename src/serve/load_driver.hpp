// Closed-loop load driver: replays prompt_suite() traffic through an
// InferenceServer, optionally injecting faults drawn from the accelerator's
// SiteMap — the serving analogue of the fault campaigns in src/fault.
//
// Closed loop: at most `concurrency` requests are in flight; completing one
// admits the next. That makes offered load self-pacing (the paper's serving
// scenario: saturating traffic, not open-loop overload) and wall time a
// direct throughput measurement.
#pragma once

#include <cstdint>
#include <string>

#include "serve/server.hpp"
#include "sim/site.hpp"
#include "tensor/random.hpp"
#include "workload/model_presets.hpp"

namespace flashabft::serve {

/// Per-request fault injection knobs.
struct FaultInjectionConfig {
  /// Probability a request carries an injected fault.
  double fault_probability = 0.0;
  /// Of injected faults, the fraction modeled persistent: a stuck-at bit
  /// lasting the whole run, re-applied on retries (forces escalation).
  double persistent_fraction = 0.25;
  /// Where faults may land. Datapath-only by default so every alarm traces
  /// to a real output corruption (no checker-state false alarms).
  SiteMask sites = SiteMask::datapath_only();
};

struct LoadDriverConfig {
  std::size_t total_requests = 100;
  std::size_t concurrency = 8;  ///< closed-loop in-flight window.
  /// Workload shape: per-head inputs come from prompt_suite() categories
  /// round-robin, generated for this preset.
  std::string preset_name = "bert";
  std::size_t heads_per_request = 4;
  /// Clamp on category sequence lengths (the cycle-level simulator pays
  /// O(passes * seq_len) per head; full prompt lengths are bench-only).
  std::size_t seq_len_cap = 64;
  FaultInjectionConfig inject{};
  std::uint64_t seed = 7;
};

/// What one load run produced, alongside the server's telemetry snapshot.
struct LoadReport {
  std::size_t completed = 0;
  std::size_t transient_injected = 0;   ///< requests given a bit-flip plan.
  std::size_t persistent_injected = 0;  ///< requests given a stuck-at plan.
  std::size_t clean_responses = 0;      ///< checksum_clean == true.
  std::size_t guarded_clean = 0;
  std::size_t recovered = 0;
  std::size_t fallback = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  TelemetrySnapshot telemetry;
};

/// Builds a ServerConfig whose accelerator matches `preset` (1/sqrt(d)
/// scaling, `lanes` lanes) with detection thresholds calibrated fault-free
/// over the seq-len-capped prompt suite — ready to serve run_load traffic.
/// Worker/batching/breaker knobs keep their defaults; adjust after.
[[nodiscard]] ServerConfig make_calibrated_server_config(
    const ModelPreset& preset, std::size_t lanes, std::size_t seq_len_cap,
    std::uint64_t seed);

/// Draws a single-fault plan over `map`: uniform (site, bit) weighted by
/// storage width, uniform cycle in [0, total_cycles). Persistent faults are
/// stuck-at for the remainder of the run; transient ones are one bit flip.
[[nodiscard]] FaultPlan draw_fault_plan(const SiteMap& map,
                                        std::size_t total_cycles,
                                        bool persistent, Rng& rng);

/// Runs the closed loop against `server` (which must be configured with an
/// accelerator matching the preset's head_dim) and reports the outcome.
[[nodiscard]] LoadReport run_load(InferenceServer& server,
                                  const LoadDriverConfig& config);

}  // namespace flashabft::serve
