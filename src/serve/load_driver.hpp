// Closed-loop load driver: replays prompt_suite() traffic through an
// InferenceServer, optionally injecting faults — drawn from the
// accelerator's SiteMap for attention-head requests, or emulated through
// the GuardedExecutor tamper hook for decoder-layer requests.
//
// Closed loop: at most `concurrency` requests are in flight; completing one
// admits the next. That makes offered load self-pacing (the paper's serving
// scenario: saturating traffic, not open-loop overload) and wall time a
// direct throughput measurement.
#pragma once

#include <cstdint>
#include <string>

#include "serve/server.hpp"
#include "sim/site.hpp"
#include "tensor/random.hpp"
#include "workload/model_presets.hpp"

namespace flashabft::serve {

/// What one request of the driven load carries.
enum class RequestMode {
  kAttentionHeads,  ///< AttentionWork through the cycle-level accelerator.
  kDecoderLayer,    ///< LayerWork through the server's protected layer.
  kGeneration,      ///< GenerationWork sessions through the full model.
};

/// Per-request fault injection knobs.
struct FaultInjectionConfig {
  /// Probability a request carries an injected fault.
  double fault_probability = 0.0;
  /// Of injected faults, the fraction modeled persistent: re-applied on
  /// every retry, forcing escalation to the reference fallback.
  double persistent_fraction = 0.25;
  /// Attention mode: where accelerator faults may land. Datapath-only by
  /// default so every alarm traces to a real output corruption.
  SiteMask sites = SiteMask::datapath_only();
  /// Layer/generation modes: emulated checksum shift applied to the
  /// targeted op.
  double layer_fault_magnitude = 1e-3;
  /// Generation mode: of injected faults, the fraction that are KV-cache
  /// storage upsets (detected by the cache checksum and re-materialized
  /// from the checkpoint) rather than op tampering. Needs >= 2 generated
  /// tokens to have a decode step that reads the cache.
  double kv_corruption_fraction = 0.5;
  /// Generation mode: element shift of a KV-cache corruption.
  double kv_corruption_delta = 1.0;
  /// Of KV-cache upsets, the fraction redirected at the page *table*
  /// (continuous scheduler's mapping state; the legacy cache degrades them
  /// to data upsets). 0 keeps the PR 5 draw stream bit-identical.
  double page_table_fraction = 0.0;
  /// Of KV-cache upsets, the fraction landing on checksum *state* (running
  /// sums / table checksum) instead of data — the false-alarm recovery
  /// surface. 0 keeps the PR 5 draw stream bit-identical.
  double checksum_state_fraction = 0.0;
  /// Of injected non-KV faults, the fraction that tamper unprotected
  /// session metadata (fed-back tokens, prompt, generation budget) instead
  /// of op outputs. 0 keeps the PR 5 draw stream bit-identical.
  double session_tamper_fraction = 0.0;
};

struct LoadDriverConfig {
  std::size_t total_requests = 100;
  std::size_t concurrency = 8;  ///< closed-loop in-flight window.
  RequestMode mode = RequestMode::kAttentionHeads;
  /// Workload shape (attention mode): per-head inputs come from
  /// prompt_suite() categories round-robin, generated for this preset.
  /// Layer mode draws its row count from the sampled category too;
  /// generation mode only borrows the category names as telemetry tags.
  std::string preset_name = "bert";
  std::size_t heads_per_request = 4;
  /// Clamp on the sampled category's sequence length: attention-mode head
  /// shapes and layer-mode decoder-side rows both follow
  /// min(category.seq_len, seq_len_cap), so load varies per category.
  std::size_t seq_len_cap = 64;
  /// Layer mode: encoder-memory length of each request.
  std::size_t memory_len = 16;
  /// Generation mode: prompt tokens per session (random ids over the
  /// server model's vocab) and greedy tokens to produce.
  std::size_t prompt_len = 12;
  std::size_t max_new_tokens = 6;
  /// Generation mode, "many users, few templates": when > 0, each prompt
  /// draws its first `prefix_len` tokens from one of `templates` shared
  /// template stems (assigned round-robin) and only the remaining
  /// prompt_len - prefix_len tokens independently — the workload the
  /// shared-prefix KV cache exists for. 0 keeps fully independent random
  /// prompts (the PR 5 shape).
  std::size_t templates = 0;
  /// Shared-stem length when `templates` > 0; must be < prompt_len so
  /// every session still has a private suffix to decode from.
  std::size_t prefix_len = 0;
  FaultInjectionConfig inject{};
  std::uint64_t seed = 7;
};

/// What one load run produced, alongside the server's telemetry snapshot
/// (whose per_kind array carries the per-op-kind accounting).
struct LoadReport {
  std::size_t completed = 0;
  std::size_t transient_injected = 0;   ///< requests given a transient fault.
  std::size_t persistent_injected = 0;  ///< requests given a persistent one.
  std::size_t clean_responses = 0;      ///< checksum_clean == true.
  std::size_t guarded_clean = 0;
  std::size_t recovered = 0;
  std::size_t fallback = 0;
  std::size_t tokens_generated = 0;     ///< generation mode only.
  /// Shared-prefix cache outcomes (generation mode on the continuous
  /// scheduler; zero elsewhere): sessions whose prefill was partly served
  /// from the cache, the prefill tokens they skipped, and the TTFT split
  /// between cache-hit and cache-miss sessions — the cached/cold TTFT
  /// ratio is the benchmark's headline number.
  std::size_t prefix_cached_responses = 0;
  std::size_t prefix_cached_tokens = 0;
  double cached_ttft_p50_us = 0.0;      ///< over cache-hit sessions only.
  double uncached_ttft_p50_us = 0.0;    ///< over cache-miss sessions only.
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double tokens_per_second = 0.0;       ///< generation mode only.
  TelemetrySnapshot telemetry;
};

/// Builds a ServerConfig whose accelerator matches `preset` (1/sqrt(d)
/// scaling, `lanes` lanes) with detection thresholds calibrated fault-free
/// over the seq-len-capped prompt suite — ready to serve run_load traffic.
/// Worker/batching/breaker/layer knobs keep their defaults; adjust after.
[[nodiscard]] ServerConfig make_calibrated_server_config(
    const ModelPreset& preset, std::size_t lanes, std::size_t seq_len_cap,
    std::uint64_t seed);

/// Draws a single-fault plan over `map`: uniform (site, bit) weighted by
/// storage width, uniform cycle in [0, total_cycles). Persistent faults are
/// stuck-at for the remainder of the run; transient ones are one bit flip.
[[nodiscard]] FaultPlan draw_fault_plan(const SiteMap& map,
                                        std::size_t total_cycles,
                                        bool persistent, Rng& rng);

/// Draws an emulated fault for a decoder-layer request: a uniformly chosen
/// checkable op (attention head, projection, or FFN product) corrupted for
/// one attempt (transient) or past the retry budget (persistent).
[[nodiscard]] LayerFault draw_layer_fault(const DecoderLayerConfig& layer,
                                          const RecoveryPolicy& recovery,
                                          double magnitude, bool persistent,
                                          Rng& rng);

/// Draws an emulated op fault for one step of a generation session: a
/// uniform step in [0, max_new_tokens) and a uniform checkable op of the
/// stacked model (heads, projections incl. the LM head, FFN products),
/// addressed by its global index.
[[nodiscard]] GenerationStepFault draw_generation_fault(
    const TransformerConfig& model, const RecoveryPolicy& recovery,
    double magnitude, bool persistent, std::size_t max_new_tokens, Rng& rng);

/// Draws a KV-cache storage upset for a generation session: a uniform
/// decode step in [1, max_new_tokens), layer, K/V side and element (row/col
/// are reduced modulo the live cache shape at injection time). The
/// trailing site-class flags retarget the same draw at the page table
/// (`page_table`) or at checksum state (`checksum_state`) — see
/// KvCorruption; defaults preserve the PR 5 data-upset behavior and draw
/// stream.
[[nodiscard]] KvCorruption draw_kv_corruption(const TransformerConfig& model,
                                              std::size_t max_new_tokens,
                                              double delta, Rng& rng,
                                              bool page_table = false,
                                              bool checksum_state = false);

/// Draws a session-metadata tamper for a generation session: a uniform
/// target over the unprotected scheduler/session state — the fed-back
/// generated token (uniform decode step), a prompt token (lands on the
/// prefill) or the generation budget (shrink-only). These sites carry no
/// checksum, so the campaign expects them to surface as SDCs.
[[nodiscard]] SessionTamper draw_session_tamper(std::size_t max_new_tokens,
                                                Rng& rng);

/// Runs the closed loop against `server` (whose accelerator — attention
/// mode — or decoder layer — layer mode — must match the config's shapes)
/// and reports the outcome.
[[nodiscard]] LoadReport run_load(InferenceServer& server,
                                  const LoadDriverConfig& config);

}  // namespace flashabft::serve
