#include "serve/circuit_breaker.hpp"

#include "common/ensure.hpp"

namespace flashabft::serve {

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {
  FLASHABFT_ENSURE_MSG(config_.window > 0, "breaker window must be positive");
  FLASHABFT_ENSURE_MSG(config_.trip_threshold > 0,
                       "trip threshold must be positive");
}

bool CircuitBreaker::should_bypass() {
  if (!open_) return false;
  ++decisions_while_open_;
  const bool probe = config_.probe_interval != 0 &&
                     decisions_while_open_ % config_.probe_interval == 0;
  return !probe;
}

bool CircuitBreaker::record_escalation() {
  push_outcome(true);
  if (!open_ && escalations_in_window_ >= config_.trip_threshold) {
    open_ = true;
    ++trips_;
    decisions_while_open_ = 0;
    return true;
  }
  return false;
}

void CircuitBreaker::record_success() {
  push_outcome(false);
  if (open_) {
    // A probe went through the accelerator and came back clean: close and
    // start a fresh window, forgetting the defect-era escalations.
    open_ = false;
    outcomes_.clear();
    escalations_in_window_ = 0;
  }
}

void CircuitBreaker::reset() {
  open_ = false;
  outcomes_.clear();
  escalations_in_window_ = 0;
  decisions_while_open_ = 0;
}

void CircuitBreaker::push_outcome(bool escalated) {
  outcomes_.push_back(escalated);
  if (escalated) ++escalations_in_window_;
  while (outcomes_.size() > config_.window) {
    if (outcomes_.front()) --escalations_in_window_;
    outcomes_.pop_front();
  }
}

}  // namespace flashabft::serve
