// Per-worker circuit breaker over escalation outcomes.
//
// A transient upset recovers on retry; a worker whose accelerator keeps
// escalating is a persistent-defect suspect (paper §I: persistent faults
// "keep alarming"). The breaker watches a sliding window of request
// outcomes and, once escalations cross the trip threshold, opens: the
// worker bypasses its accelerator and serves requests with the software
// reference kernel. While open, every probe_interval-th request is sent
// through the accelerator anyway (half-open probe); a clean probe closes
// the breaker — the defect was transient after all.
//
// Not thread-safe by design: each worker owns one breaker and touches it
// only from its own service loop.
#pragma once

#include <cstddef>
#include <deque>

namespace flashabft::serve {

struct CircuitBreakerConfig {
  std::size_t window = 16;         ///< outcomes tracked.
  std::size_t trip_threshold = 3;  ///< escalations in window that trip it.
  /// While open, every Nth decision routes to the accelerator as a probe;
  /// 0 disables probing (the breaker stays open until reset()).
  std::size_t probe_interval = 8;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config);

  /// Decision point, called once per request *before* execution: true means
  /// bypass the accelerator and serve via the reference fallback. While
  /// open, returns false on probe turns.
  [[nodiscard]] bool should_bypass();

  /// Outcome report: the request escalated (retries exhausted). May trip
  /// the breaker; returns true iff this call tripped it (closed -> open).
  bool record_escalation();

  /// Outcome report: the request completed clean or recovered on the
  /// accelerator. Closes the breaker if a probe just succeeded.
  void record_success();

  /// Force-close (operator action / tests).
  void reset();

  [[nodiscard]] bool open() const { return open_; }
  [[nodiscard]] std::size_t trips() const { return trips_; }

 private:
  void push_outcome(bool escalated);

  CircuitBreakerConfig config_;
  std::deque<bool> outcomes_;  ///< true = escalation, newest at back.
  std::size_t escalations_in_window_ = 0;
  bool open_ = false;
  std::size_t trips_ = 0;
  std::size_t decisions_while_open_ = 0;
};

}  // namespace flashabft::serve
