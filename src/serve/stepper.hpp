// Deterministic tick-stepped execution of generation work on the real
// serving engines.
//
// The fault campaign needs thousands of seeded trials whose outcomes are
// bit-reproducible, which the production entry points cannot give: the
// legacy server schedules steps through a worker pool and the continuous
// scheduler runs its own thread. This stepper drives the same step code —
// the model's prefill/decode calls, the shared fault surface
// (fault_surface.hpp) and, in continuous mode, the actual
// ContinuousScheduler in `SchedulerConfig::manual` single-tick mode — on
// the calling thread, one step/tick at a time, in a fixed order. Identical
// works + identical config => identical tokens, logits and fault
// accounting, every run.
#pragma once

#include <string>
#include <vector>

#include "core/guarded_op.hpp"
#include "model/transformer_model.hpp"
#include "obs/hooks.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/telemetry.hpp"

namespace flashabft::serve {

/// Per-session outcome of a stepped run (index-aligned with the submitted
/// works).
struct SteppedSession {
  std::vector<std::size_t> tokens;   ///< generated ids (prompt excluded).
  std::vector<double> final_logits;  ///< last step's next-token logits.
  ServePath path = ServePath::kGuardedClean;
  std::size_t op_executions = 0;
  std::size_t alarm_events = 0;
  std::size_t fallback_ops = 0;
  std::size_t meta_verifies = 0;       ///< sealed-record boundary checks.
  std::size_t scrub_faults_found = 0;  ///< latent faults the scrub caught.
  std::size_t scrub_repairs = 0;       ///< of those, healed before the read.
  std::size_t dmr_compares = 0;
  std::size_t dmr_mismatches = 0;
  bool checksum_clean = true;
  bool failed = false;  ///< a step threw / the engine failed the session.
  bool hang = false;    ///< the step/tick watchdog fired (implies failed).
  std::string error;    ///< failure description when `failed`.
};

struct StepperConfig {
  SchedulerMode mode = SchedulerMode::kLegacy;
  GuardedExecutor::Options executor_options;
  /// Continuous-engine shape (ignored by the legacy path).
  std::size_t max_batch_tokens = 16;
  std::size_t page_size = 8;
  std::size_t num_pages = 0;   ///< 0 = derived (no page pressure).
  std::size_t max_active = 0;  ///< 0 = every session active at once.
  /// Shared-prefix KV caching (the production default; the campaign's
  /// shared_prefix subsystem needs the multi-reader pages it creates).
  bool prefix_cache = true;
  /// Watchdog: hard cap on scheduler ticks (continuous) or per-session
  /// steps (legacy). 0 derives a generous bound from the session budgets;
  /// exceeding it fails the remaining sessions with `hang` set instead of
  /// spinning forever — the campaign's crash/hang outcome class.
  std::size_t max_ticks = 0;
  /// Non-owning observability taps, threaded into the executors and (in
  /// continuous mode) the scheduler's own emit sites. The watchdog firing
  /// records a kHang flight event, so a crash/hang trial's dump ends with
  /// the wedge itself. The stepper's internal telemetry profiler is always
  /// on — `telemetry_out->timing` carries the per-OpKind phase histograms.
  obs::TraceCollector* trace = nullptr;
  obs::FlightRecorder* flight = nullptr;
};

/// Drives every work item to completion on the calling thread, one
/// deterministic step (legacy) or scheduler tick (continuous) at a time.
/// Sessions are admitted in submission order; results are index-aligned.
/// `telemetry_out` (optional, continuous mode only) receives the final
/// telemetry snapshot — the pool-level shared-prefix/heal counters the
/// per-session results cannot carry.
[[nodiscard]] std::vector<SteppedSession> run_stepped(
    const TransformerModel& model, std::vector<GenerationWork> works,
    const StepperConfig& cfg, TelemetrySnapshot* telemetry_out = nullptr);

}  // namespace flashabft::serve
