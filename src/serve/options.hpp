// Shared serving-stack CLI knobs.
//
// serve_throughput, fault_campaign and serving_demo each grew their own
// copies of the same flag set (worker pool shape, batching deadline, paged
// KV geometry, scheduler engine, storage dtype, seed, preset) with
// drifting defaults. This helper is the single definition: one struct of
// the common knobs, one parser over CliArgs, and one applier onto a
// ServerConfig — binaries keep only their genuinely private flags.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "numerics/dtype.hpp"
#include "serve/server.hpp"

namespace flashabft::serve {

/// The serving knobs every serving binary shares. Field defaults are the
/// historical serve_throughput defaults; binaries with different historical
/// defaults override them in the `defaults` argument of the parser.
struct CommonServeOptions {
  std::size_t threads = 2;              ///< --threads
  std::size_t max_batch = 8;            ///< --max-batch
  std::size_t batch_deadline_us = 200;  ///< --batch-deadline-us
  std::size_t page_size = 16;           ///< --page-size
  std::size_t max_batch_tokens = 16;    ///< --max-batch-tokens
  std::size_t max_sessions = 8;         ///< --max-sessions
  std::size_t kv_budget_bytes = 0;      ///< --kv-budget-bytes (0 = off)
  SchedulerMode scheduler = SchedulerMode::kLegacy;  ///< --scheduler
  DType dtype = DType::kF32;            ///< --dtype (first sweep entry)
  /// Every dtype of a '+'-separated --dtype sweep (e.g. "f32+bf16").
  /// Always non-empty; `dtype` is its first entry. Single-regime binaries
  /// read `dtype`; sweep-capable ones (fault_campaign) iterate this.
  std::vector<DType> dtype_sweep = {DType::kF32};
  std::uint64_t seed = 7;               ///< --seed
  std::string preset = "bert";          ///< --preset
  /// --trace: Chrome/Perfetto trace_event JSON written here after the run
  /// (empty = tracing off; the collector is only constructed when set).
  std::string trace_path{};             ///< --trace
  /// --flight-dump: the flight recorder's last-events ring dumped here on
  /// demand after the run (empty = no recorder).
  std::string flight_dump_path{};       ///< --flight-dump
};

/// Parses the shared flag set on top of `defaults`. Invalid enum values
/// (--scheduler, --dtype) print a diagnostic to stderr and return nullopt
/// so the binary can exit with a usage error.
[[nodiscard]] std::optional<CommonServeOptions> parse_common_serve_options(
    const CliArgs& args, CommonServeOptions defaults = {});

/// Applies the common knobs onto a ServerConfig: worker pool, batching,
/// scheduler geometry (page size, decode-batch cap, KV byte budget),
/// session bound and the storage-dtype regime.
void apply_common_options(const CommonServeOptions& options,
                          ServerConfig& config);

}  // namespace flashabft::serve
