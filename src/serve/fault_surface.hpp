// The shared fault-application surface of both generation engines.
//
// A generation session's injected faults — emulated op upsets, KV storage
// and checksum-state upsets, page-table redirects, session-metadata tampers
// — used to be applied by engine-private code (the legacy server's step
// loop and the continuous scheduler's tick). The fault campaign measures
// both engines against one fault model, so the application logic lives
// here once and every engine (server worker, scheduler tick, campaign
// stepper) calls the same functions: identical faults land identically no
// matter which engine executes the step.
//
// Step numbering everywhere: 0 = prefill, s >= 1 = the s-th decode step.
#pragma once

#include <cstddef>
#include <vector>

#include "core/guarded_op.hpp"
#include "core/kv_cache.hpp"
#include "core/kv_pool.hpp"
#include "core/meta_guard.hpp"
#include "scrub/scrubber.hpp"
#include "serve/request.hpp"

namespace flashabft::serve {

/// Applies the work's KvCorruptions scheduled for `step_index` to a legacy
/// contiguous cache. The legacy path has no page table, so `page_table`
/// corruptions degrade to the nearest real site: a data upset (or, with
/// `checksum_state`, a running-sum upset). Only corruptions whose `latent`
/// flag matches `latent` are applied: immediate upsets land just before the
/// step's read, latent ones at the start of the session's idle window.
void apply_kv_corruptions(const GenerationWork& work, std::size_t step_index,
                          KvCache& cache, bool latent = false);

/// The paged-pool variant: data, page-table, per-page-checksum and
/// table-checksum upsets on the session's live pages/tables.
void apply_kv_corruptions(const GenerationWork& work, std::size_t step_index,
                          KvPagePool& pool, PagedKv& kv, bool latent = false);

/// True iff the work schedules a latent corruption exactly at `step_index`
/// (the step whose read the idle window precedes).
[[nodiscard]] bool has_latent_corruption(const GenerationWork& work,
                                         std::size_t step_index);

/// Applies the work's SessionTampers scheduled for `step_index` to the
/// session's sealed metadata fields. `meta` must be the record's `raw()`
/// reference — the write deliberately leaves the seal stale, exactly like
/// the memory upset it models, for the next `guarded_meta_verify` to catch.
/// Token shifts wrap at `vocab_size`; budget tampers shrink (never extend)
/// the budget so a tampered-but-undetected session still terminates.
void apply_session_tampers(const GenerationWork& work, SessionMeta& meta,
                           std::size_t step_index, std::size_t vocab_size);

/// The per-step executor both engines use: `options`, with the tamper hook
/// armed iff the work schedules op faults for `step_index`.
[[nodiscard]] GuardedExecutor make_generation_step_executor(
    const GenerationWork& work, std::size_t step_index,
    const GuardedExecutor::Options& options);

/// Outcome of a legacy idle-window scrub (see `scrub_idle_window`).
struct IdleScrubOutcome {
  std::size_t items_scrubbed = 0;
  std::size_t faults_found = 0;  ///< items that alarmed (latent faults).
  std::size_t repairs = 0;       ///< healed from checkpoints/mirrors.
  /// OpReports of the alarmed items (clean passes stay unreported).
  std::vector<OpReport> reports;
  bool clean = true;  ///< false iff an item escalated unrepaired.
};

/// The legacy engine's latent-fault window: the contiguous-cache path has
/// no tick loop for a background scrub thread to ride, so a session's idle
/// window collapses into `idle_ticks` inline scrub passes (minimum one)
/// over its cache layers and sealed metadata record — the same
/// verify-and-heal items the continuous scheduler's scrubber walks, healing
/// from the checkpoint mirrors before the next read.
[[nodiscard]] IdleScrubOutcome scrub_idle_window(
    KvCache& cache, GuardedRecord<SessionMeta>& meta, std::size_t idle_ticks,
    const GuardedExecutor& executor);

}  // namespace flashabft::serve
