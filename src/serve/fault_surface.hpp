// The shared fault-application surface of both generation engines.
//
// A generation session's injected faults — emulated op upsets, KV storage
// and checksum-state upsets, page-table redirects, session-metadata tampers
// — used to be applied by engine-private code (the legacy server's step
// loop and the continuous scheduler's tick). The fault campaign measures
// both engines against one fault model, so the application logic lives
// here once and every engine (server worker, scheduler tick, campaign
// stepper) calls the same functions: identical faults land identically no
// matter which engine executes the step.
//
// Step numbering everywhere: 0 = prefill, s >= 1 = the s-th decode step.
#pragma once

#include <cstddef>
#include <vector>

#include "core/guarded_op.hpp"
#include "core/kv_cache.hpp"
#include "core/kv_pool.hpp"
#include "serve/request.hpp"

namespace flashabft::serve {

/// Applies the work's KvCorruptions scheduled for `step_index` to a legacy
/// contiguous cache. The legacy path has no page table, so `page_table`
/// corruptions degrade to the nearest real site: a data upset (or, with
/// `checksum_state`, a running-sum upset).
void apply_kv_corruptions(const GenerationWork& work, std::size_t step_index,
                          KvCache& cache);

/// The paged-pool variant: data, page-table, per-page-checksum and
/// table-checksum upsets on the session's live pages/tables.
void apply_kv_corruptions(const GenerationWork& work, std::size_t step_index,
                          KvPagePool& pool, PagedKv& kv);

/// Applies the work's SessionTampers scheduled for `step_index` to the
/// session's unprotected metadata: `generated` is the engine's
/// produced-token list (the feedback path of the next decode step), and
/// prompt / generation budget live in `work` itself. Token shifts wrap at
/// `vocab_size`; budget tampers shrink (never extend) the budget so a
/// tampered session still terminates.
void apply_session_tampers(GenerationWork& work, std::size_t step_index,
                           std::vector<std::size_t>& generated,
                           std::size_t vocab_size);

/// The per-step executor both engines use: `options`, with the tamper hook
/// armed iff the work schedules op faults for `step_index`.
[[nodiscard]] GuardedExecutor make_generation_step_executor(
    const GenerationWork& work, std::size_t step_index,
    const GuardedExecutor::Options& options);

}  // namespace flashabft::serve
