#include "serve/options.hpp"

#include <chrono>
#include <iostream>

namespace flashabft::serve {

std::optional<CommonServeOptions> parse_common_serve_options(
    const CliArgs& args, CommonServeOptions defaults) {
  CommonServeOptions out = defaults;
  out.threads = args.get_size("threads", defaults.threads);
  out.max_batch = args.get_size("max-batch", defaults.max_batch);
  out.batch_deadline_us =
      args.get_size("batch-deadline-us", defaults.batch_deadline_us);
  out.page_size = args.get_size("page-size", defaults.page_size);
  out.max_batch_tokens =
      args.get_size("max-batch-tokens", defaults.max_batch_tokens);
  out.max_sessions = args.get_size("max-sessions", defaults.max_sessions);
  out.kv_budget_bytes =
      args.get_size("kv-budget-bytes", defaults.kv_budget_bytes);
  out.seed = std::uint64_t(args.get_size("seed", defaults.seed));
  out.preset = args.get_string("preset", defaults.preset);
  out.trace_path = args.get_string("trace", defaults.trace_path);
  out.flight_dump_path =
      args.get_string("flight-dump", defaults.flight_dump_path);

  const std::string scheduler_arg =
      args.get_string("scheduler", scheduler_mode_name(defaults.scheduler));
  const std::optional<SchedulerMode> scheduler =
      parse_scheduler_mode(scheduler_arg);
  if (!scheduler) {
    std::cerr << "unknown --scheduler=" << scheduler_arg
              << " (want legacy|continuous)\n";
    return std::nullopt;
  }
  out.scheduler = *scheduler;

  const std::string dtype_arg =
      args.get_string("dtype", dtype_name(defaults.dtype));
  out.dtype_sweep.clear();
  std::size_t start = 0;
  while (start <= dtype_arg.size()) {
    std::size_t end = dtype_arg.find_first_of("+,", start);
    if (end == std::string::npos) end = dtype_arg.size();
    const std::string token = dtype_arg.substr(start, end - start);
    const std::optional<DType> dtype = parse_dtype(token);
    if (!dtype) {
      std::cerr << "unknown --dtype=" << token
                << " (want f32|bf16|f16, '+'-joinable)\n";
      return std::nullopt;
    }
    out.dtype_sweep.push_back(*dtype);
    start = end + 1;
  }
  out.dtype = out.dtype_sweep.front();
  return out;
}

void apply_common_options(const CommonServeOptions& options,
                          ServerConfig& config) {
  config.num_workers = options.threads;
  config.batching.max_batch = options.max_batch;
  config.batching.batch_deadline =
      std::chrono::microseconds(options.batch_deadline_us);
  config.scheduler.mode = options.scheduler;
  config.scheduler.page_size = options.page_size;
  config.scheduler.max_batch_tokens = options.max_batch_tokens;
  config.scheduler.kv_budget_bytes = options.kv_budget_bytes;
  config.max_sessions = options.max_sessions;
  config.dtype = options.dtype;
}

}  // namespace flashabft::serve
