#include "serve/stepper.hpp"

#include <exception>
#include <future>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/ensure.hpp"
#include "obs/flight_recorder.hpp"
#include "serve/fault_surface.hpp"
#include "serve/session.hpp"
#include "serve/telemetry.hpp"

namespace flashabft::serve {

namespace {

ServePath classify_path(std::size_t fallback_ops, std::size_t recovered_ops) {
  if (fallback_ops > 0) return ServePath::kFallbackReference;
  if (recovered_ops > 0) return ServePath::kGuardedRecovered;
  return ServePath::kGuardedClean;
}

/// Boundary verify of the stepped session's sealed metadata — the same
/// policy as the server's verify_session_meta: every check is counted,
/// only alarmed ones fold into the fault accounting.
void verify_stepped_meta(GuardedRecord<SessionMeta>& meta,
                         const GuardedExecutor& executor, SteppedSession& out,
                         std::size_t& recovered_ops) {
  ++out.meta_verifies;
  LayerReport report;
  (void)guarded_meta_verify(meta, /*index=*/0, executor, report);
  const OpReport& op = report.ops.front();
  if (op.alarms == 0 && op.verdict == CheckVerdict::kPass) return;
  out.op_executions += report.executions();
  out.alarm_events += report.alarm_events();
  if (op.recovery == RecoveryStatus::kRecovered) ++recovered_ops;
  out.checksum_clean = out.checksum_clean && report.all_accepted_clean();
}

/// Mirrors the legacy server's execute_session_step loop without the
/// worker pool: same step numbering, same fault surface, same accounting.
SteppedSession run_legacy(const TransformerModel& model, GenerationWork work,
                          const StepperConfig& cfg) {
  SteppedSession out;
  KvCache cache = model.make_cache();
  GuardedRecord<SessionMeta> meta;
  meta.mutate([&work](SessionMeta& m) {
    m.prompt = work.prompt;
    m.max_new_tokens = work.max_new_tokens;
  });
  GuardedExecutor::Options exec_options = cfg.executor_options;
  exec_options.obs.trace = cfg.trace;
  exec_options.obs.flight = cfg.flight;
  // Untampered executor for the control-plane verifies and scrub passes —
  // the step executor's fault hook models op upsets, not checker upsets.
  const GuardedExecutor control_executor(exec_options);
  std::size_t recovered_ops = 0;
  // Budget tampers only ever shrink max_new_tokens, so the loop is
  // intrinsically bounded; the watchdog is the defense against engine
  // bugs, mirrored from the continuous tick budget.
  const std::size_t max_steps =
      cfg.max_ticks > 0 ? cfg.max_ticks : work.max_new_tokens + 8;
  std::size_t steps = 0;
  try {
    while (meta.value().tokens.size() < meta.value().max_new_tokens) {
      if (++steps > max_steps) {
        out.failed = true;
        out.hang = true;
        out.error = "step budget exceeded";
        if (cfg.flight != nullptr) {
          cfg.flight->record(obs::FlightEventKind::kHang, "stepper",
                             "step_budget", steps - 1);
        }
        break;
      }
      const bool is_prefill = meta.value().tokens.empty();
      const std::size_t step_index =
          is_prefill ? 0 : meta.value().steps_done + 1;
      GuardedExecutor executor = make_generation_step_executor(
          work, step_index, exec_options);
      // Tampers write through raw(); the boundary verify catches the stale
      // seal and repairs the record from its mirror before the step reads.
      apply_session_tampers(work, meta.raw(), step_index,
                            model.config().vocab_size);
      verify_stepped_meta(meta, control_executor, out, recovered_ops);
      if (is_prefill) {
        // Weight-integrity scrub before the first read: a parameter upset
        // resident at admission is storage corruption, and the bit-exact
        // staleness check catches it at every dtype — the low-precision
        // regime's arithmetic thresholds never widen this path.
        LayerReport weights;
        const bool fresh =
            guarded_weight_verify(model, /*index=*/0, control_executor,
                                  weights);
        out.op_executions += weights.executions();
        out.alarm_events += weights.alarm_events();
        if (!fresh) ++out.scrub_faults_found;
        out.checksum_clean =
            out.checksum_clean && weights.all_accepted_clean();
      }
      if (!is_prefill) {
        // Latent upsets land at the start of the idle window and the inline
        // scrub passes must heal them before this step's read (the legacy
        // stand-in for the continuous scheduler's background scrubber).
        if (has_latent_corruption(work, step_index)) {
          apply_kv_corruptions(work, step_index, cache, /*latent=*/true);
          IdleScrubOutcome scrub = scrub_idle_window(
              cache, meta, work.latent_idle_ticks, control_executor);
          out.scrub_faults_found += scrub.faults_found;
          out.scrub_repairs += scrub.repairs;
          for (const OpReport& op : scrub.reports) {
            out.op_executions += op.executions;
            out.alarm_events += op.alarms;
            if (op.recovery == RecoveryStatus::kRecovered) ++recovered_ops;
          }
          out.checksum_clean = out.checksum_clean && scrub.clean;
        }
        apply_kv_corruptions(work, step_index, cache);
      }
      StepResult step =
          is_prefill ? model.prefill(meta.value().prompt,
                                     AttentionBackend::kFlashAbft, executor,
                                     cache)
                     : model.decode_step(meta.value().tokens.back(),
                                         AttentionBackend::kFlashAbft,
                                         executor, cache);
      meta.mutate([&step, is_prefill](SessionMeta& m) {
        m.tokens.push_back(step.next_token);
        if (!is_prefill) ++m.steps_done;
      });
      out.final_logits = std::move(step.logits);
      out.op_executions += step.report.executions();
      out.alarm_events += step.report.alarm_events();
      out.fallback_ops += step.report.fallback_ops();
      out.dmr_compares += step.report.dmr_compares();
      out.dmr_mismatches += step.report.dmr_mismatches();
      recovered_ops += step.report.recovered_ops();
      out.checksum_clean =
          out.checksum_clean && step.report.all_accepted_clean();
    }
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  } catch (...) {
    out.failed = true;
    out.error = "unknown exception";
  }
  out.tokens = meta.value().tokens;
  out.path = classify_path(out.fallback_ops, recovered_ops);
  return out;
}

std::vector<SteppedSession> run_continuous(const TransformerModel& model,
                                           std::vector<GenerationWork> works,
                                           const StepperConfig& cfg,
                                           TelemetrySnapshot* telemetry_out) {
  std::vector<SteppedSession> out(works.size());

  const std::size_t max_active =
      cfg.max_active > 0 ? cfg.max_active : works.size();
  SessionTable table(max_active, works.size());
  ServeTelemetry telemetry;
  SchedulerConfig scfg;
  scfg.mode = SchedulerMode::kContinuous;
  scfg.manual = true;
  scfg.max_batch_tokens = cfg.max_batch_tokens;
  scfg.page_size = cfg.page_size;
  scfg.num_pages = cfg.num_pages;
  scfg.prefix_cache = cfg.prefix_cache;
  scfg.sweep_threads = 1;
  scfg.trace = cfg.trace;
  scfg.flight = cfg.flight;
  GuardedExecutor::Options exec_options = cfg.executor_options;
  exec_options.obs.trace = cfg.trace;
  exec_options.obs.flight = cfg.flight;
  exec_options.obs.profiler = telemetry.op_profiler();
  ContinuousScheduler scheduler(scfg, model, exec_options, table,
                                telemetry);

  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(works.size());
  std::size_t total_budget = 0;
  for (std::size_t i = 0; i < works.size(); ++i) {
    total_budget += works[i].max_new_tokens;
    auto session = std::make_unique<GenerationSession>();
    session->id = i;
    session->work = std::move(works[i]);
    session->seal_meta();
    futures.push_back(session->promise.get_future());
    SessionAdmission admission;
    if (!scheduler.admit(session, admission)) {
      session->promise.set_exception(std::make_exception_ptr(
          std::runtime_error("scheduler refused admission")));
    } else if (admission.shed != nullptr) {
      admission.shed->promise.set_exception(std::make_exception_ptr(
          std::runtime_error("session shed at admission")));
    }
  }

  // Tick watchdog: each session needs ~1 tick per token plus prefill and
  // preemption-resume ticks; anything far past that is a wedged engine and
  // becomes the campaign's crash/hang class.
  const std::size_t max_ticks =
      cfg.max_ticks > 0 ? cfg.max_ticks
                        : (total_budget + 4 * works.size()) * 8 + 64;
  std::size_t ticks = 0;
  while (scheduler.run_tick()) {
    if (++ticks > max_ticks) {
      if (cfg.flight != nullptr) {
        cfg.flight->record(obs::FlightEventKind::kHang, "stepper",
                           "tick_budget", ticks - 1);
      }
      scheduler.abort_all("tick budget exceeded");
      break;
    }
  }
  scheduler.shutdown();
  if (telemetry_out != nullptr) *telemetry_out = telemetry.snapshot();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    SteppedSession& result = out[i];
    try {
      ServeResponse response = futures[i].get();
      result.tokens = std::move(response.tokens);
      result.final_logits = std::move(response.final_logits);
      result.path = response.path;
      result.op_executions = response.op_executions;
      result.alarm_events = response.alarm_events;
      result.fallback_ops = response.fallback_ops;
      result.meta_verifies = response.meta_verifies;
      result.scrub_faults_found = response.scrub_faults_found;
      result.scrub_repairs = response.scrub_repairs;
      result.dmr_compares = response.dmr_compares;
      result.dmr_mismatches = response.dmr_mismatches;
      result.checksum_clean = response.checksum_clean;
    } catch (const std::exception& e) {
      result.failed = true;
      result.error = e.what();
      result.hang = result.error.find("tick budget exceeded") !=
                    std::string::npos;
    } catch (...) {
      result.failed = true;
      result.error = "unknown exception";
    }
  }
  return out;
}

}  // namespace

std::vector<SteppedSession> run_stepped(const TransformerModel& model,
                                        std::vector<GenerationWork> works,
                                        const StepperConfig& cfg,
                                        TelemetrySnapshot* telemetry_out) {
  if (cfg.mode == SchedulerMode::kContinuous) {
    return run_continuous(model, std::move(works), cfg, telemetry_out);
  }
  std::vector<SteppedSession> out;
  out.reserve(works.size());
  for (GenerationWork& work : works) {
    out.push_back(run_legacy(model, std::move(work), cfg));
  }
  return out;
}

}  // namespace flashabft::serve
