#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <span>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/ensure.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "serve/fault_surface.hpp"

namespace flashabft::serve {

namespace {

double to_us(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

KvPoolConfig scheduler_pool_config(const SchedulerConfig& cfg,
                                   const TransformerModel& model,
                                   std::size_t sessions) {
  KvPoolConfig pool_cfg =
      model.make_pool_config(cfg.page_size, cfg.num_pages, sessions);
  if (cfg.kv_budget_bytes > 0) {
    pool_cfg.num_pages = pool_cfg.pages_for_budget(cfg.kv_budget_bytes);
  }
  pool_cfg.prefix_cache = cfg.prefix_cache;
  return pool_cfg;
}

}  // namespace

const char* scheduler_mode_name(SchedulerMode mode) {
  switch (mode) {
    case SchedulerMode::kLegacy: return "legacy";
    case SchedulerMode::kContinuous: return "continuous";
  }
  return "unknown";
}

std::optional<SchedulerMode> parse_scheduler_mode(std::string_view name) {
  if (name == "legacy") return SchedulerMode::kLegacy;
  if (name == "continuous") return SchedulerMode::kContinuous;
  return std::nullopt;
}

ContinuousScheduler::ContinuousScheduler(
    const SchedulerConfig& cfg, const TransformerModel& model,
    const GuardedExecutor::Options& executor_options, SessionTable& sessions,
    ServeTelemetry& telemetry)
    : cfg_(cfg),
      model_(model),
      executor_options_(executor_options),
      sessions_(sessions),
      telemetry_(telemetry),
      pool_(scheduler_pool_config(cfg, model, sessions.max_active())),
      control_executor_(executor_options) {
  FLASHABFT_ENSURE_MSG(cfg_.max_batch_tokens > 0,
                       "scheduler needs a positive decode-batch cap");
  // 0 is resolved by the server (worker count capped at hardware
  // concurrency); an explicit setting is honored as-is so the parallel
  // sweep stays testable on any machine.
  if (cfg_.sweep_threads == 0) cfg_.sweep_threads = 1;
  telemetry_.set_page_usage(0, pool_.num_pages(), 0);
  if (cfg_.manual) {
    // Deterministic stepping: the owner drives ticks via run_tick() and a
    // single-threaded sweep keeps every tick's work order reproducible.
    cfg_.sweep_threads = 1;
  }
  if (cfg_.scrub) {
    scrub::Scrubber::Options scrub_options;
    scrub_options.budget = cfg_.scrub_budget;
    scrub_options.interval = cfg_.scrub_interval;
    // Manual mode drives passes inline from tick() on one thread; only
    // thread mode needs the pass-vs-tick serialization.
    scrub_options.guard = cfg_.manual ? nullptr : &scrub_mutex_;
    // The scheduler publishes scrub counters at tick boundaries, but the
    // paced thread keeps scrubbing (idle shared-prefix pages included)
    // after the last session drains and ticks stop — republish per pass
    // so telemetry tracks those idle-window passes too.
    scrub_options.on_pass = [this] { publish_scrub(); };
    scrub_options.obs.trace = cfg_.trace;
    scrub_options.obs.flight = cfg_.flight;
    scrubber_ = std::make_unique<scrub::Scrubber>(
        [this] { return scrub_items(); }, scrub_options);
  }
  if (!cfg_.manual) {
    thread_ = std::thread([this] { loop(); });
    if (scrubber_ != nullptr) scrubber_->start();
  }
}

ContinuousScheduler::~ContinuousScheduler() { shutdown(); }

bool ContinuousScheduler::admit(std::unique_ptr<GenerationSession>& session,
                                SessionAdmission& admission) {
  FLASHABFT_ENSURE(session != nullptr);
  {
    std::lock_guard lock(mutex_);
    // stop_ flips under this mutex and the loop only exits once stop_ is
    // observed *and* everything drained — so a false here happens-before
    // the final drain check and the session cannot be orphaned.
    if (stop_) return false;
    admission = sessions_.admit(std::move(session));
    if (admission.activated != nullptr) {
      ready_.push_back(admission.activated);
    }
  }
  wake_.notify_one();
  return true;
}

void ContinuousScheduler::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  if (cfg_.manual) {
    // No scheduler thread: drain inline. The run_tick() stall guard fails
    // unbackable sessions, so this loop terminates.
    while (run_tick()) {
    }
  } else if (thread_.joinable()) {
    thread_.join();
  }
  if (scrubber_ != nullptr) {
    scrubber_->stop();
    publish_scrub();
  }
}

bool ContinuousScheduler::run_tick() {
  FLASHABFT_ENSURE_MSG(cfg_.manual,
                       "run_tick requires SchedulerConfig::manual");
  std::vector<GenerationSession*> incoming;
  {
    std::lock_guard lock(mutex_);
    incoming.swap(ready_);
  }
  tick(std::move(incoming));

  // Stall guard: with nothing running there is nothing to preempt, so
  // waiting sessions the pool cannot back will never be admitted by
  // further ticks. A few grace ticks cover transient shapes (completions
  // land parked promotions next tick); past that, fail them so manual
  // drains always terminate.
  if (!running_.empty() || waiting_.empty()) {
    stall_ticks_ = 0;
  } else if (++stall_ticks_ >= 3) {
    std::deque<GenerationSession*> stalled;
    stalled.swap(waiting_);
    for (GenerationSession* session : stalled) {
      fail(session, std::make_exception_ptr(std::runtime_error(
                        "scheduler stalled: page pool cannot back the "
                        "waiting session")));
    }
    stall_ticks_ = 0;
  }

  std::lock_guard lock(mutex_);
  return !ready_.empty() || !waiting_.empty() || !running_.empty() ||
         sessions_.parked() > 0;
}

void ContinuousScheduler::abort_all(const std::string& reason) {
  FLASHABFT_ENSURE_MSG(cfg_.manual,
                       "abort_all requires SchedulerConfig::manual");
  const auto error =
      std::make_exception_ptr(std::runtime_error(reason));
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
    for (GenerationSession* session : ready_) waiting_.push_back(session);
    ready_.clear();
  }
  // Fail running sessions first so their freed table slots let parked
  // sessions activate (and be failed) below.
  std::vector<GenerationSession*> running;
  running.swap(running_);
  for (GenerationSession* session : running) fail(session, error);
  std::deque<GenerationSession*> waiting;
  waiting.swap(waiting_);
  for (GenerationSession* session : waiting) fail(session, error);
  while (GenerationSession* parked = sessions_.try_activate_parked()) {
    fail(parked, error);
  }
  publish_page_usage();
}

void ContinuousScheduler::loop() {
  while (true) {
    std::vector<GenerationSession*> incoming;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || !ready_.empty() || !waiting_.empty() ||
               !running_.empty() || sessions_.parked() > 0;
      });
      const bool drained = ready_.empty() && waiting_.empty() &&
                           running_.empty() && sessions_.parked() == 0;
      if (stop_ && drained) return;
      incoming.swap(ready_);
    }
    // The scrub thread holds the same mutex across each pass, so session
    // state is only ever touched by one of tick/scrub at a time.
    std::lock_guard scrub_lock(scrub_mutex_);
    tick(std::move(incoming));
  }
}

std::size_t ContinuousScheduler::content_tokens(
    const GenerationSession& session) const {
  // The cache holds the prompt plus every generated token except the last,
  // still-undecoded one (mirrors the legacy step protocol).
  return session.prompt().size() +
         (session.tokens().empty() ? 0 : session.tokens().size() - 1);
}

void ContinuousScheduler::insert_waiting(GenerationSession* session) {
  const auto pos = std::find_if(
      waiting_.begin(), waiting_.end(), [&](const GenerationSession* other) {
        return other->sched_order > session->sched_order;
      });
  waiting_.insert(pos, session);
}

void ContinuousScheduler::tick(std::vector<GenerationSession*> incoming) {
  obs::TraceSpan tick_span(cfg_.trace, "tick", "sched");
  // Parked admissions first: the table promotes oldest-first, and stamping
  // orders here keeps FIFO age consistent with admission order.
  while (GenerationSession* parked = sessions_.try_activate_parked()) {
    telemetry_.on_session_start();
    parked->sched_order = next_order_++;
    insert_waiting(parked);
  }
  for (GenerationSession* session : incoming) {
    telemetry_.on_session_start();
    session->sched_order = next_order_++;
    if (cfg_.trace != nullptr) {
      cfg_.trace->instant_arg("admit", session->sched_order, "sched");
    }
    insert_waiting(session);
  }
  admit_waiting();
  decode_tick();
  // Completions inside this tick freed slots; pull their parked successors
  // now so the wait predicate can sleep on an empty table.
  while (GenerationSession* parked = sessions_.try_activate_parked()) {
    telemetry_.on_session_start();
    parked->sched_order = next_order_++;
    insert_waiting(parked);
  }
  publish_page_usage();
  // Tick slack: manual mode runs one deterministic scrub pass inline (the
  // thread mode's scrub thread paces itself); either way the counters are
  // published while they are fresh.
  if (scrubber_ != nullptr) {
    if (cfg_.manual) scrubber_->run_tick();
    publish_scrub();
  }
}

void ContinuousScheduler::admit_waiting() {
  while (!waiting_.empty()) {
    GenerationSession* session = waiting_.front();
    // Room for the re-prefilled content plus the next decode append keeps a
    // fresh admission from preempting something on its very first step.
    const std::size_t needed =
        pool_.session_pages_for(content_tokens(*session) + 1);
    // available_pages counts registered-but-unmapped shared pages too: the
    // allocator reclaims them by LRU eviction, so they must not trigger
    // preemption of live sessions.
    if (pool_.available_pages() < needed &&
        !preempt_for(needed, session->sched_order)) {
      break;  // no eligible (younger) victims — wait for completions.
    }
    waiting_.pop_front();
    try {
      start_or_resume(*session);
    } catch (...) {
      fail(session, std::current_exception());
    }
  }
}

void ContinuousScheduler::start_or_resume(GenerationSession& session) {
  const Clock::time_point start = Clock::now();
  const bool first_activation = session.paged == nullptr;
  obs::TraceSpan prefill_span(
      cfg_.trace, first_activation ? "prefill" : "resume-prefill", "sched");
  if (first_activation) {
    session.paged = std::make_unique<PagedKv>(
        pool_.make_session(session.key));
    if (session.enqueue_time != Clock::time_point{}) {
      session.queue_us = to_us(start - session.enqueue_time);
    }
  } else {
    ++session.resumes;
    telemetry_.on_session_resume();
    if (cfg_.flight != nullptr) {
      cfg_.flight->record(obs::FlightEventKind::kResume, "scheduler",
                          "session", session.sched_order);
    }
  }

  // Step-0 session tampers (prompt upsets, budget tampers) land on the
  // original prefill only, mirroring the step-0 tamper rule below: a
  // resume replays already-tampered state. The tamper writes through the
  // record's raw backdoor; the boundary verify right after catches the
  // stale seal and repairs from the mirror, so a tampered session alarms
  // instead of silently steering the prefill.
  if (first_activation) {
    apply_session_tampers(session.work, session.meta.raw(), /*step_index=*/0,
                          model_.config().vocab_size);
    verify_meta(session);
  }

  // First activation prefills the prompt; a resume re-prefills prompt +
  // generated tokens (minus the undecoded last) — greedy decode is
  // deterministic, so the rebuilt pages continue token-for-token.
  std::vector<std::size_t> content = session.prompt();
  if (!session.tokens().empty()) {
    content.insert(content.end(), session.tokens().begin(),
                   session.tokens().end() - 1);
  }
  // Step-0 faults fire on the original prefill only: a resume is a fresh
  // recomputation of already-produced state, so re-arming the tamper would
  // re-inject the same fault once per preemption cycle and inflate the
  // alarm/fallback accounting relative to what was actually injected.
  GuardedExecutor executor = first_activation
                                 ? make_step_executor(session, /*step=*/0)
                                 : GuardedExecutor(executor_options_);
  // Shared-prefix lookup: map the longest registered prefix of the content
  // into the (empty) tables and prefill only the suffix. A resume
  // re-resolves — its preemption dropped the refs but the registry entry
  // (and pages) linger as evictable cache, so the resume's re-prefill
  // collapses to the divergent tail.
  const std::size_t cached =
      cfg_.prefix_cache ? pool_.acquire_prefix(*session.paged, content) : 0;
  if (first_activation) session.prefix_cached_tokens = cached;
  StepResult step =
      cached > 0
          ? model_.prefill_paged_cached(content, cached,
                                        AttentionBackend::kFlashAbft, executor,
                                        pool_, *session.paged)
          : model_.prefill_paged(content, AttentionBackend::kFlashAbft,
                                 executor, pool_, *session.paged);
  // Register the prompt's prefill pages for later sessions. Only the
  // original prefill publishes: a resume's content embeds generated tokens
  // no other session's *prompt* can hit.
  if (first_activation && cfg_.prefix_cache) {
    pool_.publish_prefix(*session.paged, session.prompt());
  }

  const double service_us = to_us(Clock::now() - start);
  if (first_activation) {
    const bool done = absorb_step(session, std::move(step),
                                  /*batch_size=*/1, service_us);
    session.ttft_us = session.enqueue_time != Clock::time_point{}
                          ? to_us(Clock::now() - session.enqueue_time)
                          : session.service_us;
    if (done) {
      finalize(&session);
      return;
    }
  } else {
    // The resume's produced token is the one the session already holds;
    // only the (real, protected) recomputation work is accounted.
    absorb_report(session, std::move(step.report), service_us);
  }
  running_.push_back(&session);
}

bool ContinuousScheduler::preempt_for(std::size_t needed,
                                      std::uint64_t requester_order) {
  while (pool_.available_pages() < needed) {
    GenerationSession* victim = nullptr;
    for (GenerationSession* candidate : running_) {
      // Victims are strictly younger than the requester: the oldest
      // session can never be preempted, so it always finishes.
      if (candidate->sched_order <= requester_order) continue;
      if (victim == nullptr) {
        victim = candidate;
        continue;
      }
      const bool newer = candidate->sched_order > victim->sched_order;
      if (cfg_.preemption == PreemptionPolicy::kNewestFirst ? newer : !newer) {
        victim = candidate;
      }
    }
    if (victim == nullptr) return false;
    preempt(victim);
  }
  return true;
}

void ContinuousScheduler::preempt(GenerationSession* victim) {
  pool_.free_session(*victim->paged);
  ++victim->preemptions;
  telemetry_.on_preemption();
  if (cfg_.flight != nullptr) {
    cfg_.flight->record(obs::FlightEventKind::kPreemption, "scheduler",
                        "session", victim->sched_order);
  }
  if (cfg_.trace != nullptr) {
    cfg_.trace->instant_arg("preempt", victim->sched_order, "sched");
  }
  running_.erase(std::find(running_.begin(), running_.end(), victim));
  insert_waiting(victim);
}

void ContinuousScheduler::apply_corruptions(GenerationSession& session,
                                            std::size_t step_index) {
  apply_kv_corruptions(session.work, step_index, pool_, *session.paged);
}

GuardedExecutor ContinuousScheduler::make_step_executor(
    const GenerationSession& session, std::size_t step_index) const {
  return make_generation_step_executor(session.work, step_index,
                                       executor_options_);
}

void ContinuousScheduler::absorb_report(GenerationSession& session,
                                        ModelReport report,
                                        double service_us) {
  session.op_executions += report.executions();
  session.alarm_events += report.alarm_events();
  session.fallback_ops += report.fallback_ops();
  session.recovered_ops += report.recovered_ops();
  session.dmr_compares += report.dmr_compares();
  session.dmr_mismatches += report.dmr_mismatches();
  if (report.escalated_ops() > 0) telemetry_.on_escalation();
  session.checksum_clean =
      session.checksum_clean && report.all_accepted_clean();
  std::vector<OpReport> flat = report.flatten();
  session.all_reports.insert(session.all_reports.end(),
                             std::make_move_iterator(flat.begin()),
                             std::make_move_iterator(flat.end()));
  session.service_us += service_us;
}

void ContinuousScheduler::absorb_control(GenerationSession& session,
                                         LayerReport report) {
  ModelReport wrapper;
  wrapper.final_ops = std::move(report);
  absorb_report(session, std::move(wrapper), /*service_us=*/0.0);
}

bool ContinuousScheduler::verify_meta(GenerationSession& session) {
  ++session.meta_verifies;
  LayerReport report;
  const bool clean = guarded_meta_verify(session.meta, /*index=*/0,
                                         control_executor_, report);
  const OpReport& op = report.ops.front();
  // Clean first-try verifies stay out of the session's op stream (one per
  // stepping session per tick would dwarf the real compute ops); alarmed
  // or escalated ones report through the ladder like any guarded op.
  if (op.alarms > 0 || op.verdict == CheckVerdict::kAlarm) {
    absorb_control(session, std::move(report));
  }
  return clean;
}

bool ContinuousScheduler::absorb_step(GenerationSession& session,
                                      StepResult step, std::size_t batch_size,
                                      double service_us) {
  const bool is_prefill = session.tokens().empty();
  session.push_token(step.next_token);
  session.final_logits = std::move(step.logits);
  if (!is_prefill) session.count_step();
  absorb_report(session, std::move(step.report), service_us);
  session.batch_size = batch_size;
  return session.done();
}

void ContinuousScheduler::decode_tick() {
  if (running_.empty()) return;
  obs::TraceSpan sweep_span(cfg_.trace, "decode-batch", "sched");

  // Latent-fault windows: a session whose next step carries a latent
  // corruption takes the upset NOW, then sits out `latent_idle_ticks`
  // ticks before decoding again — the exposure window in which the
  // scrubber (not the read path) must find and heal the fault.
  std::vector<GenerationSession*> eligible;
  eligible.reserve(running_.size());
  for (GenerationSession* session : running_) {
    const std::size_t step_index = session->steps_done() + 1;
    if (session->idle_ticks_left == 0 &&
        session->latent_step_done != step_index &&
        has_latent_corruption(session->work, step_index)) {
      apply_kv_corruptions(session->work, step_index, pool_, *session->paged,
                           /*latent=*/true);
      session->latent_step_done = step_index;
      session->idle_ticks_left = session->work.latent_idle_ticks;
    }
    if (session->idle_ticks_left > 0) {
      --session->idle_ticks_left;
      continue;  // idle this tick; the scrubber owns the window.
    }
    eligible.push_back(session);
  }
  if (eligible.empty()) return;

  // Round-robin selection keeps every session advancing when the run set
  // exceeds the decode-batch cap.
  std::vector<GenerationSession*> batch;
  const std::size_t take = std::min(cfg_.max_batch_tokens, eligible.size());
  rotate_ %= eligible.size();
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(eligible[(rotate_ + i) % eligible.size()]);
  }
  rotate_ += take;

  // Page-pressure phase: sessions crossing a page boundary take their
  // pages oldest-first, *eagerly* (reserve_append), so the parallel sweep
  // below never touches the shared free list — and later batch members
  // cannot double-book pages already granted this tick. Victims of a
  // reservation are always strictly younger than the requester, i.e.
  // later in this age-sorted batch — never a session already admitted to
  // `advancing`.
  std::sort(batch.begin(), batch.end(),
            [](const GenerationSession* a, const GenerationSession* b) {
              return a->sched_order < b->sched_order;
            });
  std::vector<GenerationSession*> advancing;
  for (GenerationSession* session : batch) {
    if (std::find(running_.begin(), running_.end(), session) ==
        running_.end()) {
      continue;  // preempted by an older batch member's reservation.
    }
    const std::size_t needed = pool_.append_pages_needed(*session->paged);
    if (needed > 0) {
      if (pool_.available_pages() < needed &&
          !preempt_for(needed, session->sched_order)) {
        continue;  // skip this tick; pages free as older sessions finish.
      }
      pool_.reserve_append(*session->paged);
    }
    advancing.push_back(session);
  }
  if (advancing.empty()) return;

  // Session tampers land only on sessions actually stepping this tick (a
  // skipped session re-applies the same step next tick, which would
  // double-inject). The tick-boundary verify right after catches the stale
  // seal and repairs the record from its mirror, so a tamper alarms and
  // the session continues on clean metadata; only a double-fault that also
  // hit the mirror survives (and still carries the alarm). A session whose
  // (repaired or tampered) budget is already met finalizes on the spot.
  std::vector<GenerationSession*> stepping;
  stepping.reserve(advancing.size());
  for (GenerationSession* session : advancing) {
    const std::size_t step_index = session->steps_done() + 1;
    apply_session_tampers(session->work, session->meta.raw(), step_index,
                          model_.config().vocab_size);
    verify_meta(*session);
    if (session->done()) {
      running_.erase(std::find(running_.begin(), running_.end(), session));
      finalize(session);
      continue;
    }
    stepping.push_back(session);
  }
  advancing = std::move(stepping);
  if (advancing.empty()) return;

  const Clock::time_point start = Clock::now();
  std::vector<std::size_t> tokens;
  std::vector<GuardedExecutor> executors;
  std::vector<const GuardedExecutor*> executor_ptrs;
  std::vector<PagedKv*> kvs;
  tokens.reserve(advancing.size());
  executors.reserve(advancing.size());
  kvs.reserve(advancing.size());
  for (GenerationSession* session : advancing) {
    const std::size_t step_index = session->steps_done() + 1;
    // Storage upsets scheduled between steps land now, before the sweep
    // reads the pages (the kKvPage check must catch and repair them).
    apply_corruptions(*session, step_index);
    tokens.push_back(session->tokens().back());
    executors.push_back(make_step_executor(*session, step_index));
    kvs.push_back(session->paged.get());
  }
  for (const GuardedExecutor& executor : executors) {
    executor_ptrs.push_back(&executor);
  }

  // Parallel sweep: the batch is partitioned across sweep threads. Pages
  // were pre-reserved above, so a session's step only touches its own
  // pages and executor — with one exception: sessions mapping the same
  // shared-prefix chain all verify (and on alarm, heal) the SAME pages.
  // Co-readers are therefore fused into one unit (keyed by the pool's
  // share_group — the chain-head page id) and a unit never splits across
  // slices, so a reader's restore cannot write memory another thread's
  // verify is scanning. Units go to the least-loaded slice; threads are
  // spawned per tick (simple and join-bounded) and a slice must average
  // two sessions so tiny batches never pay a spawn for less work than it
  // costs. Results map back by batch index, so outputs are independent of
  // the partition.
  const std::size_t slices = std::max<std::size_t>(
      1, std::min(cfg_.sweep_threads, advancing.size() / 2));
  std::vector<std::vector<std::size_t>> units;
  units.reserve(advancing.size());
  {
    std::unordered_map<std::size_t, std::size_t> group_unit;
    for (std::size_t i = 0; i < advancing.size(); ++i) {
      const std::size_t group = pool_.share_group(*advancing[i]->paged);
      if (group == KvPagePool::kNoShareGroup) {
        units.push_back({i});
        continue;
      }
      const auto [it, inserted] = group_unit.emplace(group, units.size());
      if (inserted) units.emplace_back();
      units[it->second].push_back(i);
    }
  }
  std::vector<std::vector<std::size_t>> slice_members(slices);
  for (const std::vector<std::size_t>& unit : units) {
    std::size_t best = 0;
    for (std::size_t slice = 1; slice < slices; ++slice) {
      if (slice_members[slice].size() < slice_members[best].size()) {
        best = slice;
      }
    }
    slice_members[best].insert(slice_members[best].end(), unit.begin(),
                               unit.end());
  }

  std::vector<std::vector<StepResult>> slice_steps(slices);
  std::vector<std::exception_ptr> slice_errors(slices);
  const auto run_slice = [&](std::size_t slice) {
    const std::vector<std::size_t>& members = slice_members[slice];
    if (members.empty()) return;
    std::vector<std::size_t> slice_tokens;
    std::vector<const GuardedExecutor*> slice_executors;
    std::vector<PagedKv*> slice_kvs;
    slice_tokens.reserve(members.size());
    slice_executors.reserve(members.size());
    slice_kvs.reserve(members.size());
    for (std::size_t member : members) {
      slice_tokens.push_back(tokens[member]);
      slice_executors.push_back(executor_ptrs[member]);
      slice_kvs.push_back(kvs[member]);
    }
    try {
      slice_steps[slice] = model_.decode_step_batch(
          slice_tokens, slice_executors, AttentionBackend::kFlashAbft, pool_,
          slice_kvs);
    } catch (...) {
      slice_errors[slice] = std::current_exception();
    }
  };
  std::vector<std::thread> sweepers;
  sweepers.reserve(slices - 1);
  for (std::size_t slice = 1; slice < slices; ++slice) {
    sweepers.emplace_back(run_slice, slice);
  }
  run_slice(0);
  for (std::thread& sweeper : sweepers) sweeper.join();

  std::exception_ptr error;
  for (const std::exception_ptr& e : slice_errors) {
    if (e != nullptr) error = e;
  }
  if (error != nullptr) {
    // A throwing sweep cannot attribute per-session progress; fail the
    // whole batch rather than the scheduler thread.
    for (GenerationSession* session : advancing) {
      running_.erase(std::find(running_.begin(), running_.end(), session));
      fail(session, error);
    }
    return;
  }
  std::vector<StepResult> steps(advancing.size());
  for (std::size_t slice = 0; slice < slices; ++slice) {
    for (std::size_t j = 0; j < slice_members[slice].size(); ++j) {
      steps[slice_members[slice][j]] = std::move(slice_steps[slice][j]);
    }
  }

  const double share_us =
      to_us(Clock::now() - start) / double(advancing.size());
  telemetry_.on_scheduler_tick(advancing.size());
  if (cfg_.trace != nullptr) {
    cfg_.trace->instant_arg("decode-batch-size", advancing.size(), "sched");
  }
  for (std::size_t i = 0; i < advancing.size(); ++i) {
    GenerationSession* session = advancing[i];
    if (absorb_step(*session, std::move(steps[i]), advancing.size(),
                    share_us)) {
      running_.erase(std::find(running_.begin(), running_.end(), session));
      finalize(session);
    }
  }
}

void ContinuousScheduler::finalize(GenerationSession* session) {
  ServeResponse response;
  response.id = session->id;
  response.worker_id = session->worker_id;
  response.batch_size = session->batch_size;
  response.tokens = session->tokens();
  response.final_logits = std::move(session->final_logits);
  response.decode_steps = session->steps_done();
  response.ttft_us = session->ttft_us;
  response.queue_us = session->queue_us;
  response.service_us = session->service_us;
  response.total_us = session->enqueue_time != Clock::time_point{}
                          ? to_us(Clock::now() - session->enqueue_time)
                          : session->service_us;
  response.reports = std::move(session->all_reports);
  response.op_executions = session->op_executions;
  response.alarm_events = session->alarm_events;
  response.fallback_ops = session->fallback_ops;
  response.checksum_clean = session->checksum_clean;
  response.preemptions = session->preemptions;
  response.resumes = session->resumes;
  response.prefix_cached_tokens = session->prefix_cached_tokens;
  response.meta_verifies = session->meta_verifies;
  response.scrub_faults_found = session->scrub_faults_found;
  response.scrub_repairs = session->scrub_repairs;
  response.dmr_compares = session->dmr_compares;
  response.dmr_mismatches = session->dmr_mismatches;
  response.path = session->fallback_ops > 0 ? ServePath::kFallbackReference
                  : session->recovered_ops > 0
                      ? ServePath::kGuardedRecovered
                      : ServePath::kGuardedClean;
  pool_.free_session(*session->paged);
  publish_page_usage();
  telemetry_.on_response(response);
  telemetry_.on_session_complete(response);
  std::unique_ptr<GenerationSession> finished =
      sessions_.release(session->key);
  finished->promise.set_value(std::move(response));
}

void ContinuousScheduler::fail(GenerationSession* session,
                               std::exception_ptr error) {
  if (session->paged != nullptr) pool_.free_session(*session->paged);
  std::unique_ptr<GenerationSession> failed = sessions_.release(session->key);
  failed->promise.set_exception(std::move(error));
}

void ContinuousScheduler::publish_page_usage() {
  // Registered-but-unmapped shared pages are cache, not live occupancy:
  // the allocator reclaims them on demand, so they are reported as free.
  telemetry_.set_page_usage(pool_.pages_in_use() - pool_.evictable_pages(),
                            pool_.num_pages(), pool_.peak_pages_in_use());
  const PrefixCacheStats prefix = pool_.prefix_stats();
  telemetry_.set_prefix(prefix.hits, prefix.misses, prefix.hit_tokens,
                        prefix.cow_forks, prefix.evictions,
                        prefix.shared_heals, pool_.shared_pages(),
                        pool_.evictable_pages());
  // CoW forks and shared-page heals happen inside the pool; surface them as
  // counter deltas at this publish boundary (one event per occurrence).
  for (; seen_cow_forks_ < prefix.cow_forks; ++seen_cow_forks_) {
    if (cfg_.trace != nullptr) {
      cfg_.trace->instant_arg("cow-fork", seen_cow_forks_ + 1, "sched");
    }
  }
  for (; seen_shared_heals_ < prefix.shared_heals; ++seen_shared_heals_) {
    if (cfg_.flight != nullptr) {
      cfg_.flight->record(obs::FlightEventKind::kHealEpoch, "kv_pool",
                          "shared_page", seen_shared_heals_ + 1);
    }
  }
}

std::vector<scrub::ScrubItem> ContinuousScheduler::scrub_items() {
  std::vector<scrub::ScrubItem> items;
  items.reserve(running_.size() * (1 + cfg_.page_size));
  const auto outcome_of = [](const OpReport& op) {
    if (op.recovery == RecoveryStatus::kCleanFirstTry) {
      return scrub::ItemOutcome::kClean;
    }
    return op.recovery == RecoveryStatus::kRecovered
               ? scrub::ItemOutcome::kRepaired
               : scrub::ItemOutcome::kUnrepairable;
  };
  // The shared model weights: one staleness walk per pass. Storage
  // corruption of a parameter is visible to every running session, so a
  // stale checksum marks them all — and because the compare is bit-exact
  // at every dtype, weight detection does not degrade under low-precision
  // storage the way the quantization-widened arithmetic thresholds do.
  items.push_back({[this] {
    LayerReport report;
    const bool fresh =
        guarded_weight_verify(model_, /*index=*/0, control_executor_, report);
    if (fresh) return scrub::ItemOutcome::kClean;
    for (GenerationSession* session : running_) {
      ++session->scrub_faults_found;
      LayerReport copy;
      for (const OpReport& op : report.ops) copy.ops.push_back(op);
      absorb_control(*session, std::move(copy));
    }
    return scrub::ItemOutcome::kUnrepairable;
  }});
  for (GenerationSession* session : running_) {
    // The sealed metadata record.
    items.push_back({[this, session, outcome_of] {
      LayerReport report;
      (void)guarded_meta_verify(session->meta, /*index=*/0, control_executor_,
                                report);
      const scrub::ItemOutcome outcome = outcome_of(report.ops.front());
      if (outcome != scrub::ItemOutcome::kClean) {
        ++session->scrub_faults_found;
        if (outcome == scrub::ItemOutcome::kRepaired) {
          ++session->scrub_repairs;
        }
        absorb_control(*session, std::move(report));
      }
      return outcome;
    }});
    // Every layer's pages and page table.
    for (std::size_t layer = 0; layer < session->paged->num_layers();
         ++layer) {
      items.push_back({[this, session, layer, outcome_of] {
        LayerReport report;
        (void)guarded_page_verify(pool_, *session->paged, layer,
                                  /*index=*/layer, control_executor_, report);
        const scrub::ItemOutcome outcome = outcome_of(report.ops.front());
        if (outcome != scrub::ItemOutcome::kClean) {
          ++session->scrub_faults_found;
          if (outcome == scrub::ItemOutcome::kRepaired) {
            ++session->scrub_repairs;
          }
          absorb_control(*session, std::move(report));
        }
        return outcome;
      }});
    }
  }
  // Idle shared-prefix pages: registered pages no running session maps.
  // Nothing verifies them on the decode path, so the scrubber is the only
  // thing standing between a latent upset and the next session that maps
  // the prefix — exactly the exposure window the latent drill measures.
  for (std::size_t id : pool_.idle_shared_pages()) {
    items.push_back({[this, id] {
      return pool_.scrub_shared_page(id) ? scrub::ItemOutcome::kRepaired
                                         : scrub::ItemOutcome::kClean;
    }});
  }
  return items;
}

void ContinuousScheduler::publish_scrub() {
  const scrub::ScrubStats stats = scrubber_->stats();
  telemetry_.set_scrub(stats.passes, stats.items_scrubbed, stats.faults_found,
                       stats.repairs, stats.unrepairable);
}

}  // namespace flashabft::serve
