#include "serve/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/table.hpp"

namespace flashabft::serve {

double percentile(std::span<const double> sorted_samples, double p) {
  if (sorted_samples.empty()) return 0.0;
  if (sorted_samples.size() == 1) return sorted_samples[0];
  const double clamped = std::clamp(p, 0.0, 1.0);
  const double rank = clamped * double(sorted_samples.size() - 1);
  const std::size_t lo = std::size_t(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, sorted_samples.size() - 1);
  const double frac = rank - double(lo);
  return sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac;
}

void LatencyReservoir::record(double sample_us, Rng& rng) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(sample_us);
    return;
  }
  const std::uint64_t slot = rng.next_below(seen_);
  if (slot < capacity_) samples_[std::size_t(slot)] = sample_us;
}

void ServeTelemetry::on_response(const ServeResponse& response) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  switch (response.path) {
    case ServePath::kGuardedClean:
      clean_first_try_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServePath::kGuardedRecovered:
      recovered_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServePath::kFallbackReference:
      fallback_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  alarm_events_.fetch_add(response.alarm_events, std::memory_order_relaxed);
  op_executions_.fetch_add(response.op_executions,
                           std::memory_order_relaxed);
  fallback_ops_.fetch_add(response.fallback_ops, std::memory_order_relaxed);
  meta_verifies_.fetch_add(response.meta_verifies,
                           std::memory_order_relaxed);
  dmr_compares_.fetch_add(response.dmr_compares, std::memory_order_relaxed);
  dmr_mismatches_.fetch_add(response.dmr_mismatches,
                            std::memory_order_relaxed);
  (response.checksum_clean ? checksum_clean_ : checksum_dirty_)
      .fetch_add(1, std::memory_order_relaxed);

  // Per-op-kind accounting from the unified report stream. Escalations are
  // attributed to the escalating op's kind; the fallback op that replaced
  // it reports separately under kReferenceFallback.
  for (const OpReport& report : response.reports) {
    const std::size_t kind = std::size_t(report.kind);
    kind_checks_[kind].fetch_add(1, std::memory_order_relaxed);
    kind_alarms_[kind].fetch_add(report.alarms, std::memory_order_relaxed);
    if (report.recovery == RecoveryStatus::kRecovered) {
      kind_recovered_[kind].fetch_add(1, std::memory_order_relaxed);
    }
    if (report.recovery == RecoveryStatus::kEscalated &&
        report.kind != OpKind::kReferenceFallback) {
      kind_escalated_[kind].fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::lock_guard lock(latency_mutex_);
  queue_us_.record(response.queue_us, reservoir_rng_);
  service_us_.record(response.service_us, reservoir_rng_);
  total_us_.record(response.total_us, reservoir_rng_);
}

void ServeTelemetry::on_session_complete(const ServeResponse& response) {
  sessions_completed_.fetch_add(1, std::memory_order_relaxed);
  tokens_generated_.fetch_add(response.tokens.size(),
                              std::memory_order_relaxed);
  decode_steps_.fetch_add(response.decode_steps, std::memory_order_relaxed);
  std::lock_guard lock(latency_mutex_);
  ttft_us_.record(response.ttft_us, reservoir_rng_);
}

TelemetrySnapshot ServeTelemetry::snapshot() const {
  TelemetrySnapshot s;
  s.compute = compute_.load(std::memory_order_relaxed);
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.clean_first_try = clean_first_try_.load(std::memory_order_relaxed);
  s.recovered = recovered_.load(std::memory_order_relaxed);
  s.fallback = fallback_.load(std::memory_order_relaxed);
  s.escalations = escalations_.load(std::memory_order_relaxed);
  s.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  s.breaker_bypasses = breaker_bypasses_.load(std::memory_order_relaxed);
  s.alarm_events = alarm_events_.load(std::memory_order_relaxed);
  s.op_executions = op_executions_.load(std::memory_order_relaxed);
  s.fallback_ops = fallback_ops_.load(std::memory_order_relaxed);
  s.checksum_clean = checksum_clean_.load(std::memory_order_relaxed);
  s.checksum_dirty = checksum_dirty_.load(std::memory_order_relaxed);
  s.sessions_started = sessions_started_.load(std::memory_order_relaxed);
  s.sessions_completed =
      sessions_completed_.load(std::memory_order_relaxed);
  s.sessions_parked = sessions_parked_.load(std::memory_order_relaxed);
  s.tokens_generated = tokens_generated_.load(std::memory_order_relaxed);
  s.decode_steps = decode_steps_.load(std::memory_order_relaxed);
  s.scheduler_ticks = scheduler_ticks_.load(std::memory_order_relaxed);
  s.scheduled_steps = scheduled_steps_.load(std::memory_order_relaxed);
  s.preemptions = preemptions_.load(std::memory_order_relaxed);
  s.session_resumes = session_resumes_.load(std::memory_order_relaxed);
  s.pages_in_use = pages_in_use_.load(std::memory_order_relaxed);
  s.pages_total = pages_total_.load(std::memory_order_relaxed);
  s.peak_pages_in_use = peak_pages_in_use_.load(std::memory_order_relaxed);
  s.prefix_hits = prefix_hits_.load(std::memory_order_relaxed);
  s.prefix_misses = prefix_misses_.load(std::memory_order_relaxed);
  s.prefix_hit_tokens = prefix_hit_tokens_.load(std::memory_order_relaxed);
  s.prefix_cow_forks = prefix_cow_forks_.load(std::memory_order_relaxed);
  s.prefix_evictions = prefix_evictions_.load(std::memory_order_relaxed);
  s.shared_heals = shared_heals_.load(std::memory_order_relaxed);
  s.shared_pages = shared_pages_.load(std::memory_order_relaxed);
  s.evictable_pages = evictable_pages_.load(std::memory_order_relaxed);
  s.meta_verifies = meta_verifies_.load(std::memory_order_relaxed);
  s.scrub_passes = scrub_passes_.load(std::memory_order_relaxed);
  s.scrub_items = scrub_items_.load(std::memory_order_relaxed);
  s.scrub_faults_found =
      scrub_faults_found_.load(std::memory_order_relaxed);
  s.scrub_repairs = scrub_repairs_.load(std::memory_order_relaxed);
  s.scrub_unrepairable =
      scrub_unrepairable_.load(std::memory_order_relaxed);
  s.dmr_compares = dmr_compares_.load(std::memory_order_relaxed);
  s.dmr_mismatches = dmr_mismatches_.load(std::memory_order_relaxed);
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    s.per_kind[k].checks = kind_checks_[k].load(std::memory_order_relaxed);
    s.per_kind[k].alarms = kind_alarms_[k].load(std::memory_order_relaxed);
    s.per_kind[k].recovered =
        kind_recovered_[k].load(std::memory_order_relaxed);
    s.per_kind[k].escalated =
        kind_escalated_[k].load(std::memory_order_relaxed);
  }
  s.timing = op_profiler_.snapshot();

  std::vector<double> queue_us, service_us, total_us, ttft_us;
  {
    std::lock_guard lock(latency_mutex_);
    queue_us = queue_us_.samples();
    service_us = service_us_.samples();
    total_us = total_us_.samples();
    ttft_us = ttft_us_.samples();
  }
  std::sort(queue_us.begin(), queue_us.end());
  std::sort(service_us.begin(), service_us.end());
  std::sort(total_us.begin(), total_us.end());
  std::sort(ttft_us.begin(), ttft_us.end());
  s.queue_p50_us = percentile(queue_us, 0.50);
  s.queue_p99_us = percentile(queue_us, 0.99);
  s.service_p50_us = percentile(service_us, 0.50);
  s.service_p99_us = percentile(service_us, 0.99);
  s.total_p50_us = percentile(total_us, 0.50);
  s.total_p95_us = percentile(total_us, 0.95);
  s.total_p99_us = percentile(total_us, 0.99);
  s.total_max_us = total_us.empty() ? 0.0 : total_us.back();
  s.ttft_p50_us = percentile(ttft_us, 0.50);
  s.ttft_p99_us = percentile(ttft_us, 0.99);
  return s;
}

double TelemetrySnapshot::throughput_rps(double wall_seconds) const {
  return wall_seconds > 0.0 ? double(completed) / wall_seconds : 0.0;
}

double TelemetrySnapshot::tokens_per_second(double wall_seconds) const {
  return wall_seconds > 0.0 ? double(tokens_generated) / wall_seconds : 0.0;
}

std::string TelemetrySnapshot::render(double wall_seconds) const {
  Table t({"metric", "value"});
  t.set_title("serving telemetry");
  const auto row = [&t](const char* name, double value, int precision = 1) {
    t.add_row({name, format_number(value, precision)});
  };
  t.add_row({"compute backend", backend_name(compute)});
  row("requests submitted", double(submitted), 0);
  row("requests rejected", double(rejected), 0);
  row("requests completed", double(completed), 0);
  row("batches", double(batches), 0);
  row("throughput (req/s)", throughput_rps(wall_seconds));
  row("clean first try", double(clean_first_try), 0);
  row("recovered", double(recovered), 0);
  row("fallback served", double(fallback), 0);
  row("escalations", double(escalations), 0);
  row("breaker trips", double(breaker_trips), 0);
  row("breaker bypasses", double(breaker_bypasses), 0);
  row("alarm events", double(alarm_events), 0);
  row("op executions", double(op_executions), 0);
  row("fallback ops", double(fallback_ops), 0);
  row("checksum clean", double(checksum_clean), 0);
  row("checksum dirty", double(checksum_dirty), 0);
  if (sessions_started > 0 || sessions_parked > 0) {
    row("gen sessions started", double(sessions_started), 0);
    row("gen sessions completed", double(sessions_completed), 0);
    row("gen sessions parked", double(sessions_parked), 0);
    row("tokens generated", double(tokens_generated), 0);
    row("decode steps", double(decode_steps), 0);
    if (wall_seconds > 0.0) {
      row("tokens/sec", tokens_per_second(wall_seconds));
    }
    row("ttft p50 (us)", ttft_p50_us);
    row("ttft p99 (us)", ttft_p99_us);
  }
  if (scheduler_ticks > 0) {
    row("scheduler ticks", double(scheduler_ticks), 0);
    row("batch occupancy", batch_occupancy(), 2);
    row("preemptions", double(preemptions), 0);
    row("session resumes", double(session_resumes), 0);
    row("pages in use", double(pages_in_use), 0);
    row("peak page utilization", peak_page_utilization(), 2);
  }
  if (prefix_hits + prefix_misses > 0) {
    row("prefix hits", double(prefix_hits), 0);
    row("prefix misses", double(prefix_misses), 0);
    row("prefix hit tokens", double(prefix_hit_tokens), 0);
    row("prefix cow forks", double(prefix_cow_forks), 0);
    row("prefix evictions", double(prefix_evictions), 0);
    row("shared heals", double(shared_heals), 0);
    row("shared pages", double(shared_pages), 0);
    row("evictable pages", double(evictable_pages), 0);
  }
  if (meta_verifies > 0) {
    row("meta verifies", double(meta_verifies), 0);
  }
  if (scrub_passes > 0) {
    row("scrub passes", double(scrub_passes), 0);
    row("scrub items", double(scrub_items), 0);
    row("scrub faults found", double(scrub_faults_found), 0);
    row("scrub repairs", double(scrub_repairs), 0);
    row("scrub unrepairable", double(scrub_unrepairable), 0);
  }
  if (dmr_compares > 0) {
    row("dmr compares", double(dmr_compares), 0);
    row("dmr mismatches", double(dmr_mismatches), 0);
  }
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    const OpKindStats& stats = per_kind[k];
    if (stats.checks == 0) continue;
    const std::string value =
        format_number(double(stats.checks), 0) + " checks, " +
        format_number(double(stats.alarms), 0) + " alarms, " +
        format_number(double(stats.recovered), 0) + " recovered, " +
        format_number(double(stats.escalated), 0) + " escalated";
    t.add_row({std::string("op[") + op_kind_name(OpKind(k)) + "]", value});
  }
  // ABFT overhead: where guarded execution's time went, per kind. The
  // percentage is verify+recovery over compute — the cost the protection
  // regime adds on top of the op it protects.
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    const OpKind kind = OpKind(k);
    if (timing.of(kind, obs::GuardPhase::kCompute).count == 0 &&
        timing.guard_ns(kind) == 0) {
      continue;
    }
    const std::string value =
        format_number(double(timing.compute_ns(kind)) * 1e-6, 2) +
        " ms compute, " +
        format_number(
            double(timing.of(kind, obs::GuardPhase::kVerify).total) * 1e-6,
            2) +
        " ms verify, " +
        format_number(
            double(timing.of(kind, obs::GuardPhase::kRecovery).total) * 1e-6,
            2) +
        " ms recovery (" + format_number(timing.overhead_pct(kind), 2) +
        "% overhead)";
    t.add_row({std::string("abft[") + op_kind_name(kind) + "]", value});
  }
  row("queue p50 (us)", queue_p50_us);
  row("queue p99 (us)", queue_p99_us);
  row("service p50 (us)", service_p50_us);
  row("service p99 (us)", service_p99_us);
  row("total p50 (us)", total_p50_us);
  row("total p95 (us)", total_p95_us);
  row("total p99 (us)", total_p99_us);
  row("total max (us)", total_max_us);
  return t.render();
}

std::string TelemetrySnapshot::prometheus_text(double wall_seconds) const {
  std::ostringstream out;
  const auto counter = [&out](const char* name, std::uint64_t value,
                              const char* help) {
    out << "# HELP flashabft_" << name << " " << help << "\n"
        << "# TYPE flashabft_" << name << " counter\n"
        << "flashabft_" << name << " " << value << "\n";
  };
  const auto gauge = [&out](const char* name, double value,
                            const char* help) {
    out << "# HELP flashabft_" << name << " " << help << "\n"
        << "# TYPE flashabft_" << name << " gauge\n"
        << "flashabft_" << name << " " << value << "\n";
  };

  counter("requests_submitted_total", submitted, "admission attempts");
  counter("requests_rejected_total", rejected, "requests shed at admission");
  counter("requests_completed_total", completed, "responses delivered");
  counter("alarm_events_total", alarm_events, "checksum alarms observed");
  counter("op_executions_total", op_executions,
          "guarded op runs including retries");
  counter("fallback_ops_total", fallback_ops,
          "ops served by the reference kernel");
  counter("escalations_total", escalations, "retry budgets exhausted");
  counter("breaker_trips_total", breaker_trips, "circuit breakers opened");
  counter("checksum_dirty_total", checksum_dirty,
          "responses with an accepted alarmed op");
  counter("sessions_completed_total", sessions_completed,
          "generation sessions finished");
  counter("tokens_generated_total", tokens_generated, "tokens emitted");
  counter("scheduler_ticks_total", scheduler_ticks, "decode sweeps");
  counter("preemptions_total", preemptions,
          "sessions evicted under page pressure");
  counter("session_resumes_total", session_resumes,
          "preempted/parked sessions resumed");
  counter("scrub_passes_total", scrub_passes, "background scrub passes");
  counter("scrub_repairs_total", scrub_repairs,
          "latent faults healed by the scrubber");
  gauge("pages_in_use", double(pages_in_use), "KV pool pages allocated now");
  gauge("pages_total", double(pages_total), "KV pool size");
  if (wall_seconds > 0.0) {
    gauge("throughput_rps", throughput_rps(wall_seconds),
          "completed requests per second");
  }

  out << "# HELP flashabft_op_checks_total guarded ops reported, by kind\n"
      << "# TYPE flashabft_op_checks_total counter\n";
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    if (per_kind[k].checks == 0) continue;
    out << "flashabft_op_checks_total{kind=\"" << op_kind_name(OpKind(k))
        << "\"} " << per_kind[k].checks << "\n";
  }
  out << "# HELP flashabft_op_alarms_total checksum alarms, by kind\n"
      << "# TYPE flashabft_op_alarms_total counter\n";
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    if (per_kind[k].checks == 0) continue;
    out << "flashabft_op_alarms_total{kind=\"" << op_kind_name(OpKind(k))
        << "\"} " << per_kind[k].alarms << "\n";
  }

  // Guard-phase timing: the ABFT overhead attribution as cumulative
  // histograms (bucket edges in seconds — the log-bucketed ns histograms
  // scaled by 1e-9), one series per active (kind, phase) cell.
  out << "# HELP flashabft_guard_phase_seconds_total guarded execution time "
         "split into compute/verify/recovery, by op kind\n"
      << "# TYPE flashabft_guard_phase_seconds_total counter\n";
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    for (std::size_t p = 0; p < obs::kGuardPhaseCount; ++p) {
      const obs::LogHistogram& h = timing.cells[k][p];
      if (h.count == 0) continue;
      out << "flashabft_guard_phase_seconds_total{kind=\""
          << op_kind_name(OpKind(k)) << "\",phase=\""
          << obs::guard_phase_name(obs::GuardPhase(p)) << "\"} "
          << double(h.total) * 1e-9 << "\n";
    }
  }
  out << "# HELP flashabft_guard_phase_duration_seconds per-sample guard "
         "phase durations\n"
      << "# TYPE flashabft_guard_phase_duration_seconds histogram\n";
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    for (std::size_t p = 0; p < obs::kGuardPhaseCount; ++p) {
      const obs::LogHistogram& h = timing.cells[k][p];
      if (h.count == 0) continue;
      const std::string labels = std::string("kind=\"") +
                                 op_kind_name(OpKind(k)) + "\",phase=\"" +
                                 obs::guard_phase_name(obs::GuardPhase(p)) +
                                 "\"";
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < obs::LogHistogram::kBuckets; ++b) {
        if (h.buckets[b] == 0) continue;  // elide empty leading/inner edges.
        cumulative += h.buckets[b];
        out << "flashabft_guard_phase_duration_seconds_bucket{" << labels
            << ",le=\"" << double(obs::LogHistogram::bucket_ceiling(b)) * 1e-9
            << "\"} " << cumulative << "\n";
      }
      out << "flashabft_guard_phase_duration_seconds_bucket{" << labels
          << ",le=\"+Inf\"} " << h.count << "\n"
          << "flashabft_guard_phase_duration_seconds_sum{" << labels << "} "
          << double(h.total) * 1e-9 << "\n"
          << "flashabft_guard_phase_duration_seconds_count{" << labels << "} "
          << h.count << "\n";
    }
  }
  out << "# HELP flashabft_abft_overhead_pct verify+recovery time as a "
         "percentage of compute time, by op kind\n"
      << "# TYPE flashabft_abft_overhead_pct gauge\n";
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    const OpKind kind = OpKind(k);
    if (timing.of(kind, obs::GuardPhase::kCompute).count == 0) continue;
    out << "flashabft_abft_overhead_pct{kind=\"" << op_kind_name(kind)
        << "\"} " << timing.overhead_pct(kind) << "\n";
  }
  return out.str();
}

}  // namespace flashabft::serve
