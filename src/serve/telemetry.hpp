// Serving telemetry: counters and latency percentiles.
//
// Counters are atomics (workers bump them concurrently); latency samples go
// through a mutex-guarded reservoir, snapshotted and sorted on demand. The
// counters are designed to *reconcile*: completed = clean + recovered +
// fallback, checksum_clean + checksum_dirty = completed, and under an
// injection campaign every non-clean path traces back to an injected plan
// or a standing worker defect — the invariants the acceptance tests assert.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/guarded_op.hpp"
#include "obs/op_profile.hpp"
#include "serve/request.hpp"
#include "tensor/random.hpp"

namespace flashabft::serve {

/// Linear-interpolation percentile of a sample set; `p` in [0, 1].
/// Returns 0 for an empty set.
[[nodiscard]] double percentile(std::span<const double> sorted_samples,
                                double p);

/// Fixed-capacity uniform sample of a latency stream (Vitter's Algorithm
/// R): exact up to `capacity` samples, then each later sample replaces a
/// uniformly random slot with probability capacity/seen. Percentiles stay
/// unbiased while memory — and the per-snapshot sort — stay bounded for
/// arbitrarily long serving runs. Callers provide locking and the RNG.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(std::size_t capacity = 16384)
      : capacity_(capacity) {}

  void record(double sample_us, Rng& rng);
  [[nodiscard]] const std::vector<double>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::uint64_t seen() const { return seen_; }

 private:
  std::size_t capacity_;
  std::vector<double> samples_;
  std::uint64_t seen_ = 0;
};

/// Per-OpKind accounting derived from the unified OpReport stream.
struct OpKindStats {
  std::uint64_t checks = 0;     ///< guarded/fallback ops reported.
  std::uint64_t alarms = 0;     ///< attempt-level alarm observations.
  std::uint64_t recovered = 0;  ///< ops whose retry passed the check.
  std::uint64_t escalated = 0;  ///< ops that exhausted their retries.
};

/// A consistent copy of all telemetry at one instant.
struct TelemetrySnapshot {
  /// Compute backend the server's software guarded path ran on.
  ComputeBackend compute = ComputeBackend::kScalar;

  // Request lifecycle. `submitted` counts admission *attempts* (stamped
  // before the queue push, so completed <= submitted always holds under
  // concurrent snapshots); attempts that failed admission are also counted
  // in `rejected`, so accepted = submitted - rejected.
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   ///< shed at admission (full or shut down).
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;

  // Outcome paths.
  std::uint64_t clean_first_try = 0;
  std::uint64_t recovered = 0;
  std::uint64_t fallback = 0;         ///< served (partly) by reference kernel.
  std::uint64_t escalations = 0;      ///< retries exhausted on a worker.
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_bypasses = 0; ///< requests routed straight to fallback.

  // Fault accounting.
  std::uint64_t alarm_events = 0;   ///< op-alarm observations.
  std::uint64_t op_executions = 0;  ///< guarded op-runs incl. retries.
  std::uint64_t fallback_ops = 0;   ///< ops served by the reference kernel.
  std::uint64_t checksum_clean = 0;
  std::uint64_t checksum_dirty = 0;

  // Generation sessions.
  std::uint64_t sessions_started = 0;    ///< activated (prefill scheduled).
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_parked = 0;     ///< waited for a session slot.
  std::uint64_t tokens_generated = 0;
  std::uint64_t decode_steps = 0;        ///< steps after each prefill.

  // Continuous-batching scheduler (zero on the legacy path).
  std::uint64_t scheduler_ticks = 0;     ///< decode sweeps executed.
  std::uint64_t scheduled_steps = 0;     ///< session-steps across all ticks.
  std::uint64_t preemptions = 0;         ///< sessions whose pages were taken.
  std::uint64_t session_resumes = 0;     ///< lossless re-prefills after one.
  std::uint64_t pages_in_use = 0;        ///< pool gauge at snapshot time.
  std::uint64_t pages_total = 0;         ///< pool size (0 = no pool).
  std::uint64_t peak_pages_in_use = 0;

  // Shared-prefix cache (zero on the legacy path or with caching off).
  std::uint64_t prefix_hits = 0;        ///< prefills served from the index.
  std::uint64_t prefix_misses = 0;      ///< lookups that found nothing.
  std::uint64_t prefix_hit_tokens = 0;  ///< prompt rows skipped by hits.
  std::uint64_t prefix_cow_forks = 0;   ///< private copies off shared pages.
  std::uint64_t prefix_evictions = 0;   ///< LRU-evicted registry entries.
  std::uint64_t shared_heals = 0;       ///< shared pages healed (once each).
  std::uint64_t shared_pages = 0;       ///< gauge: allocated shared pages.
  std::uint64_t evictable_pages = 0;    ///< gauge: registry-only shared pages.

  // Control plane + background scrub (zero when the guard/scrubber is off).
  std::uint64_t meta_verifies = 0;       ///< sealed-metadata boundary checks.
  std::uint64_t scrub_passes = 0;        ///< scrub passes executed.
  std::uint64_t scrub_items = 0;         ///< verify-and-heal items scrubbed.
  std::uint64_t scrub_faults_found = 0;  ///< latent faults the scrub hit.
  std::uint64_t scrub_repairs = 0;       ///< healed from checkpoint mirrors.
  std::uint64_t scrub_unrepairable = 0;  ///< double faults that escalated.
  std::uint64_t dmr_compares = 0;        ///< dual-run glue comparisons.
  std::uint64_t dmr_mismatches = 0;      ///< bitwise divergences caught.

  /// Mean decode-batch occupancy (sessions advanced per tick).
  [[nodiscard]] double batch_occupancy() const {
    return scheduler_ticks > 0
               ? double(scheduled_steps) / double(scheduler_ticks)
               : 0.0;
  }
  /// Peak fraction of the page pool in use.
  [[nodiscard]] double peak_page_utilization() const {
    return pages_total > 0 ? double(peak_pages_in_use) / double(pages_total)
                           : 0.0;
  }

  /// Per-op-kind view of the same stream (attention vs projection vs FFN
  /// vs reference fallback), indexed by std::size_t(OpKind).
  std::array<OpKindStats, kOpKindCount> per_kind{};

  /// Per-OpKind guarded-execution timing (compute / verify / recovery, in
  /// ns) from the server's always-on OpTimingProfiler — the "ABFT overhead"
  /// attribution. Empty when no guarded op ran with the profiler attached.
  obs::OpTimingSnapshot timing;

  // Latency percentiles, microseconds.
  double queue_p50_us = 0, queue_p99_us = 0;
  double service_p50_us = 0, service_p99_us = 0;
  double total_p50_us = 0, total_p95_us = 0, total_p99_us = 0;
  /// Max over the retained reservoir — exact until the reservoir fills.
  double total_max_us = 0;
  /// Time-to-first-token percentiles over completed sessions.
  double ttft_p50_us = 0, ttft_p99_us = 0;

  /// Requests per second over `wall_seconds`.
  [[nodiscard]] double throughput_rps(double wall_seconds) const;

  /// Generated tokens per second over `wall_seconds`.
  [[nodiscard]] double tokens_per_second(double wall_seconds) const;

  /// Two-column human-readable table (bench/demo output).
  [[nodiscard]] std::string render(double wall_seconds) const;

  /// Prometheus text exposition (the scrape format): every counter/gauge as
  /// a `flashabft_*` metric, per-kind series labeled {kind="..."}, and the
  /// guard-phase timing as totals plus cumulative `_bucket{le="..."}`
  /// histograms. One self-contained string — no client library involved.
  [[nodiscard]] std::string prometheus_text(double wall_seconds) const;
};

/// Thread-safe telemetry sink shared by all workers of one server.
class ServeTelemetry {
 public:
  void on_submit() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_reject() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void on_batch() { batches_.fetch_add(1, std::memory_order_relaxed); }
  void on_escalation() {
    escalations_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_breaker_trip() {
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_breaker_bypass() {
    breaker_bypasses_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_session_start() {
    sessions_started_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_session_parked() {
    sessions_parked_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One continuous-scheduler decode sweep advancing `batch` sessions.
  void on_scheduler_tick(std::size_t batch) {
    scheduler_ticks_.fetch_add(1, std::memory_order_relaxed);
    scheduled_steps_.fetch_add(batch, std::memory_order_relaxed);
  }
  void on_preemption() {
    preemptions_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_session_resume() {
    session_resumes_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Publishes the scheduler's page-pool occupancy (scheduler thread only;
  /// peak is tracked by the caller alongside the gauge).
  void set_page_usage(std::size_t in_use, std::size_t total,
                      std::size_t peak) {
    pages_in_use_.store(in_use, std::memory_order_relaxed);
    pages_total_.store(total, std::memory_order_relaxed);
    peak_pages_in_use_.store(peak, std::memory_order_relaxed);
  }
  /// Stamps the compute backend served traffic runs on (server construction).
  void set_compute(ComputeBackend compute) {
    compute_.store(compute, std::memory_order_relaxed);
  }
  /// Publishes the scrubber's monotonic counters (gauge-style, like
  /// set_page_usage: the scrubber owns the totals, telemetry mirrors them).
  void set_scrub(std::uint64_t passes, std::uint64_t items,
                 std::uint64_t faults_found, std::uint64_t repairs,
                 std::uint64_t unrepairable) {
    scrub_passes_.store(passes, std::memory_order_relaxed);
    scrub_items_.store(items, std::memory_order_relaxed);
    scrub_faults_found_.store(faults_found, std::memory_order_relaxed);
    scrub_repairs_.store(repairs, std::memory_order_relaxed);
    scrub_unrepairable_.store(unrepairable, std::memory_order_relaxed);
  }

  /// Publishes the pool's shared-prefix counters and gauges (scheduler
  /// thread only, gauge-style like set_page_usage).
  void set_prefix(std::uint64_t hits, std::uint64_t misses,
                  std::uint64_t hit_tokens, std::uint64_t cow_forks,
                  std::uint64_t evictions, std::uint64_t heals,
                  std::uint64_t shared, std::uint64_t evictable) {
    prefix_hits_.store(hits, std::memory_order_relaxed);
    prefix_misses_.store(misses, std::memory_order_relaxed);
    prefix_hit_tokens_.store(hit_tokens, std::memory_order_relaxed);
    prefix_cow_forks_.store(cow_forks, std::memory_order_relaxed);
    prefix_evictions_.store(evictions, std::memory_order_relaxed);
    shared_heals_.store(heals, std::memory_order_relaxed);
    shared_pages_.store(shared, std::memory_order_relaxed);
    evictable_pages_.store(evictable, std::memory_order_relaxed);
  }

  /// Records one completed response: outcome path, fault accounting and the
  /// three latency samples.
  void on_response(const ServeResponse& response);

  /// Records a completed generation session's token/TTFT accounting (the
  /// generic on_response is still called for the same response).
  void on_session_complete(const ServeResponse& response);

  [[nodiscard]] TelemetrySnapshot snapshot() const;

  /// The always-on guard-phase timing profiler executors record into
  /// (lock-free; attach via GuardedExecutor::Options::obs.profiler).
  /// Const-qualified because recording — like every counter bump here — is
  /// a logically-const operation on a thread-safe sink.
  [[nodiscard]] obs::OpTimingProfiler* op_profiler() const {
    return &op_profiler_;
  }

 private:
  mutable obs::OpTimingProfiler op_profiler_;
  std::atomic<ComputeBackend> compute_{ComputeBackend::kScalar};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> clean_first_try_{0};
  std::atomic<std::uint64_t> recovered_{0};
  std::atomic<std::uint64_t> fallback_{0};
  std::atomic<std::uint64_t> escalations_{0};
  std::atomic<std::uint64_t> breaker_trips_{0};
  std::atomic<std::uint64_t> breaker_bypasses_{0};
  std::atomic<std::uint64_t> alarm_events_{0};
  std::atomic<std::uint64_t> op_executions_{0};
  std::atomic<std::uint64_t> fallback_ops_{0};
  std::atomic<std::uint64_t> checksum_clean_{0};
  std::atomic<std::uint64_t> checksum_dirty_{0};
  std::atomic<std::uint64_t> sessions_started_{0};
  std::atomic<std::uint64_t> sessions_completed_{0};
  std::atomic<std::uint64_t> sessions_parked_{0};
  std::atomic<std::uint64_t> tokens_generated_{0};
  std::atomic<std::uint64_t> decode_steps_{0};
  std::atomic<std::uint64_t> scheduler_ticks_{0};
  std::atomic<std::uint64_t> scheduled_steps_{0};
  std::atomic<std::uint64_t> preemptions_{0};
  std::atomic<std::uint64_t> session_resumes_{0};
  std::atomic<std::uint64_t> pages_in_use_{0};
  std::atomic<std::uint64_t> pages_total_{0};
  std::atomic<std::uint64_t> peak_pages_in_use_{0};
  std::atomic<std::uint64_t> prefix_hits_{0};
  std::atomic<std::uint64_t> prefix_misses_{0};
  std::atomic<std::uint64_t> prefix_hit_tokens_{0};
  std::atomic<std::uint64_t> prefix_cow_forks_{0};
  std::atomic<std::uint64_t> prefix_evictions_{0};
  std::atomic<std::uint64_t> shared_heals_{0};
  std::atomic<std::uint64_t> shared_pages_{0};
  std::atomic<std::uint64_t> evictable_pages_{0};
  std::atomic<std::uint64_t> meta_verifies_{0};
  std::atomic<std::uint64_t> scrub_passes_{0};
  std::atomic<std::uint64_t> scrub_items_{0};
  std::atomic<std::uint64_t> scrub_faults_found_{0};
  std::atomic<std::uint64_t> scrub_repairs_{0};
  std::atomic<std::uint64_t> scrub_unrepairable_{0};
  std::atomic<std::uint64_t> dmr_compares_{0};
  std::atomic<std::uint64_t> dmr_mismatches_{0};
  std::array<std::atomic<std::uint64_t>, kOpKindCount> kind_checks_{};
  std::array<std::atomic<std::uint64_t>, kOpKindCount> kind_alarms_{};
  std::array<std::atomic<std::uint64_t>, kOpKindCount> kind_recovered_{};
  std::array<std::atomic<std::uint64_t>, kOpKindCount> kind_escalated_{};

  mutable std::mutex latency_mutex_;
  Rng reservoir_rng_{0x5E12E};  ///< guarded by latency_mutex_.
  LatencyReservoir queue_us_;
  LatencyReservoir service_us_;
  LatencyReservoir total_us_;
  LatencyReservoir ttft_us_;
};

}  // namespace flashabft::serve
