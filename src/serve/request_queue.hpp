// Bounded MPMC queue — the admission buffer between request producers and
// the worker pool.
//
// Mutex + two condition variables: at serving batch sizes the queue handoff
// is orders of magnitude cheaper than one accelerator head-run, so a lock
// is the right tradeoff over a lock-free ring (simpler close semantics, no
// spurious-failure retry loops). Bounded on purpose: admission control is
// backpressure — a full queue blocks (or rejects, via try_push) instead of
// letting latency grow without bound.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/ensure.hpp"

namespace flashabft::serve {

template <typename T>
class BoundedMpmcQueue {
 public:
  using Clock = std::chrono::steady_clock;

  explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity) {
    FLASHABFT_ENSURE_MSG(capacity > 0, "queue capacity must be positive");
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Blocks while full; returns false (item dropped) if the queue closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false if full or closed (load shedding).
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; nullopt once closed *and* drained
  /// (items pushed before close() are still delivered).
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return pop_locked(lock);
  }

  /// Like pop(), but gives up at `deadline`; nullopt on timeout too.
  std::optional<T> pop_until(Clock::time_point deadline) {
    std::unique_lock lock(mutex_);
    if (!not_empty_.wait_until(
            lock, deadline, [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    return pop_locked(lock);
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    return pop_locked(lock);
  }

  /// Closes the queue: pending pushes fail, pops drain the remainder then
  /// return nullopt. Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::optional<T> pop_locked(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace flashabft::serve
