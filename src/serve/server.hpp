// The fault-tolerant inference server core.
//
// Topology: producers -> bounded MPMC queue -> batch former -> worker pool.
// Each worker owns one accelerator instance (its "device"), a circuit
// breaker, and an optional standing defect plan (the test/bench model of a
// physically faulty unit). Every request executes under the unified
// GuardedOp regime (core/guarded_op.hpp):
//
//   * AttentionWork runs through the accelerator as a GuardedExecutor
//     work-list — run all heads, re-execute the alarming subset up to
//     RecoveryPolicy::max_retries times, serve survivors from the software
//     Alg. 3 reference kernel (whose own checksum verifies the fallback).
//     Escalations feed the worker's circuit breaker; once tripped, the
//     worker bypasses its accelerator entirely (with periodic half-open
//     probes) until a probe comes back clean.
//   * LayerWork runs the server's decoder layer forward, every checkable
//     op (Q/K/V/output projections, per-head attention, FFN products)
//     guarded individually; escalated ops fall back to a clean reference
//     execution. The software path does not touch the worker's device, so
//     layer escalations bypass the breaker.
//   * GenerationWork is a *session*: the prefill runs like a batched
//     request (filling the session's checksummed KV cache), then each
//     decode step is re-enqueued as a DecodeStepWork continuation so steps
//     interleave with other traffic. Concurrent sessions are bounded
//     (SessionTable); excess sessions wait in an admission FIFO. Every
//     step's ops — including the per-layer kKvCache cache verification,
//     which re-materializes a corrupted cache from its checkpoint — feed
//     the same OpReport telemetry; the response reports generated tokens,
//     decode steps and time-to-first-token.
//
// Every accepted output is checksum-verified on whichever path produced
// it, so a completed request is checksum-clean by construction unless a
// fallback itself failed verification (checksum_dirty counts those).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/checker.hpp"
#include "core/guarded_op.hpp"
#include "model/decoder_layer.hpp"
#include "model/transformer_model.hpp"
#include "serve/batch_former.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/fault_surface.hpp"
#include "serve/request.hpp"
#include "serve/request_queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"
#include "serve/telemetry.hpp"
#include "sim/accelerator.hpp"

namespace flashabft::serve {

struct ServerConfig {
  std::size_t num_workers = 2;
  std::size_t queue_capacity = 64;
  BatchFormerConfig batching{};
  /// Per-worker accelerator configuration; compare_granularity also selects
  /// the alarm granularity of the guarded path. Calibrate the detection
  /// thresholds (fault/calibrate.hpp) for the workload being served.
  AccelConfig accel{};
  RecoveryPolicy recovery{};
  /// Software-path comparator: verifies reference-fallback outputs and
  /// every op of a decoder-layer request.
  CheckerConfig software_checker{};
  /// Compute backend of the software guarded path (layer and generation
  /// requests, attention-head heads served in software). Reference
  /// fallbacks always run kScalar regardless — see GuardedExecutor::Options.
  /// Initialized from the process-wide default.
  ComputeBackend compute = default_backend();
  /// Optional NaN/Inf screen over every guarded output (closes the
  /// comparator's Silent-NaN blind spot for served traffic). Off by
  /// default to preserve the paper's comparator semantics.
  bool screen_extremes = false;
  ExtremeValueConfig screen{};
  /// Selective dual-modular execution of the checksum-free glue ops
  /// (LayerNorm/GELU) on layer and generation requests — see
  /// GuardedExecutor::Options::dmr_glue. Off by default (2x glue cost).
  bool dmr_glue = false;
  CircuitBreakerConfig breaker{};
  /// Shape of the decoder layer serving LayerWork requests; its weights
  /// are seeded once per server (constructed lazily on first layer
  /// request) and shared by all workers.
  DecoderLayerConfig layer{};
  std::uint64_t layer_seed = 2027;
  /// Shape of the autoregressive model serving GenerationWork sessions
  /// (also lazily constructed, shared by all workers).
  TransformerConfig model{};
  std::uint64_t model_seed = 2029;
  /// Bound on concurrently active generation sessions. Excess sessions
  /// wait in the session table's admission FIFO, itself bounded by
  /// `queue_capacity`; beyond that a generation request is load-shed (its
  /// future fails and a rejection is counted), so generation traffic
  /// cannot grow server state without bound.
  std::size_t max_sessions = 4;
  /// Generation engine selection + continuous-batching knobs. kLegacy (the
  /// default) keeps the PR 3 per-session decode path; kContinuous routes
  /// GenerationWork to the paged-pool scheduler thread (AttentionWork and
  /// LayerWork always flow through the worker pool).
  SchedulerConfig scheduler{};
  /// Storage dtype of the software serving stack: the constructor copies it
  /// into `layer.dtype` / `model.dtype` (weights quantized before their
  /// checksums are cached, KV rows stored at dtype width) and the guarded
  /// executors judge with per-OpKind tolerances derived for it from the
  /// rounding-error-bound model (fault/calibrate.hpp). kF32 keeps the
  /// serving stack bit-identical to the pre-dtype behaviour.
  DType dtype = DType::kF32;
  /// Non-owning observability taps (obs/hooks.hpp): a trace collector and a
  /// flight recorder the caller owns, attached to every executor this
  /// server builds and to the continuous scheduler's own emit sites. Both
  /// null (off) by default; the per-OpKind timing profiler is NOT here — it
  /// lives in the server's telemetry and is always on.
  obs::TraceCollector* trace = nullptr;
  obs::FlightRecorder* flight = nullptr;
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerConfig config);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Submits a request; blocks while the queue is full (backpressure).
  /// Throws EnsureError if the server has been shut down.
  [[nodiscard]] std::future<ServeResponse> submit(ServeRequest request);

  /// Load-shedding submit: never blocks; on kAccepted `out` holds the
  /// response future, otherwise the typed reject reason (queue full vs
  /// shut down) is returned and a rejection is counted.
  [[nodiscard]] SubmitResult try_submit(ServeRequest request,
                                        std::future<ServeResponse>& out);

  /// Closes admission, drains in-flight requests, joins workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] const ServeTelemetry& telemetry() const { return telemetry_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// The decoder layer LayerWork requests run through (lazily constructed;
  /// also the reference for golden-output tests).
  [[nodiscard]] const DecoderLayer& layer() const;

  /// The model GenerationWork sessions run through (lazily constructed;
  /// also the reference for golden-token tests).
  [[nodiscard]] const TransformerModel& model() const;

  /// The engine serving GenerationWork.
  [[nodiscard]] SchedulerMode scheduler_mode() const {
    return config_.scheduler.mode;
  }

  /// The continuous-batching engine (kContinuous mode only; lazily built
  /// with the shared model).
  [[nodiscard]] ContinuousScheduler& scheduler();

  // Generation-session observability.
  [[nodiscard]] std::size_t active_sessions() const {
    return sessions_.active();
  }
  [[nodiscard]] std::size_t peak_active_sessions() const {
    return sessions_.peak_active();
  }
  [[nodiscard]] std::size_t parked_sessions() const {
    return sessions_.parked();
  }

  /// Installs a standing fault plan on worker `worker_id`: it is applied
  /// (on top of each request's own plan) to every accelerator execution
  /// that worker performs — the model of a persistently defective device.
  /// Pass an empty plan to heal the worker.
  void set_worker_defect(std::size_t worker_id, FaultPlan defect);

  [[nodiscard]] bool worker_breaker_open(std::size_t worker_id) const;
  [[nodiscard]] std::size_t worker_breaker_trips(std::size_t worker_id) const;

 private:
  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
  };

  struct Worker {
    std::size_t id = 0;
    Accelerator accel;
    CircuitBreaker breaker;
    FaultPlan defect;                  ///< guarded by defect_mutex.
    mutable std::mutex defect_mutex;   ///< set_worker_defect vs. loop.
    mutable std::mutex breaker_mutex;  ///< external observers vs. loop.
    std::thread thread;

    Worker(std::size_t id_, const AccelConfig& accel_cfg,
           const CircuitBreakerConfig& breaker_cfg)
        : id(id_), accel(accel_cfg), breaker(breaker_cfg) {}
  };

  /// Validates payload shape at admission; assigns an id and stamps
  /// enqueue_time — shared by both submit paths so they behave identically.
  [[nodiscard]] Pending make_pending(ServeRequest request);

  /// The software-path executor (fallback verification, layer ops).
  [[nodiscard]] GuardedExecutor make_executor() const;
  [[nodiscard]] GuardedExecutor::Options executor_options() const;

  /// Builds the session object for a popped/routed GenerationWork request.
  [[nodiscard]] static std::unique_ptr<GenerationSession> make_session(
      Pending pending);

  /// kContinuous admission: SessionTable admit + scheduler handoff (the
  /// starvation guard may promote an older parked session instead).
  void admit_continuous(Pending pending);

  void worker_loop(Worker& worker);
  [[nodiscard]] ServeResponse execute(Worker& worker, ServeRequest& request,
                                      std::size_t batch_size);
  void execute_attention(Worker& worker, const AttentionWork& work,
                         ServeResponse& response);
  void execute_layer(const LayerWork& work, ServeResponse& response);

  // --- generation sessions ---
  /// Handles a popped GenerationWork (activate-or-park + prefill) or
  /// DecodeStepWork (one decode step) and drives continuations.
  void handle_generation(Worker& worker, Pending pending,
                         std::size_t batch_size);
  /// Runs the session's next step (prefill if no tokens yet). Returns true
  /// when the session produced its last token.
  [[nodiscard]] bool execute_session_step(Worker& worker,
                                          GenerationSession& session,
                                          std::size_t batch_size);
  /// Runs steps until the session hands off (continuation enqueued) or
  /// completes; on completion drives any newly activated parked session.
  void drive_session(Worker& worker, GenerationSession* session,
                     std::size_t batch_size);
  /// Completes the session: builds the response, fulfills the promise,
  /// records telemetry; returns the next parked session (now active).
  [[nodiscard]] GenerationSession* finalize_session(
      GenerationSession& session);
  /// Boundary check of the session's sealed metadata record (tampers are
  /// applied to `raw()`, so a tamper is a stale seal this verify catches
  /// and repairs from the mirror). Clean verifies are counted but stay out
  /// of the op stream. Returns false iff the record escalated unrepaired.
  bool verify_session_meta(GenerationSession& session);
  /// Folds a legacy idle-window scrub outcome (fault counters + alarmed
  /// OpReports) into the session's accounting.
  void absorb_idle_scrub(GenerationSession& session,
                         IdleScrubOutcome outcome);

  ServerConfig config_;
  BoundedMpmcQueue<Pending> queue_;
  ServeTelemetry telemetry_;
  SessionTable sessions_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> next_auto_id_{1};
  std::atomic<bool> shut_down_{false};
  mutable std::once_flag layer_once_;
  mutable std::unique_ptr<DecoderLayer> layer_;
  mutable std::once_flag model_once_;
  mutable std::unique_ptr<TransformerModel> model_;
  std::once_flag scheduler_once_;
  std::unique_ptr<ContinuousScheduler> scheduler_;
};

}  // namespace flashabft::serve
