// The fault-tolerant inference server core.
//
// Topology: producers -> bounded MPMC queue -> batch former -> worker pool.
// Each worker owns one accelerator instance (its "device"), a circuit
// breaker, and an optional standing defect plan (the test/bench model of a
// physically faulty unit). Per request the worker executes the guarded
// path:
//
//   1. run_heads through the accelerator with the request's fault plan
//      (+ the worker defect),
//   2. on alarm, re-execute the alarming heads (rerun_alarming_heads) up to
//      RecoveryPolicy::max_retries times — transient upsets recover here,
//   3. if retries are exhausted, escalate: the still-alarming heads are
//      served by the software Alg. 3 reference kernel (flash_abft), whose
//      own checksum verifies the fallback outputs,
//   4. escalations feed the worker's circuit breaker; once tripped, the
//      worker bypasses its accelerator entirely (with periodic half-open
//      probes) until a probe comes back clean.
//
// Every accepted output is checksum-verified on whichever path produced it,
// so a completed request is checksum-clean by construction unless the
// fallback itself failed verification (checksum_dirty counts those).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/checker.hpp"
#include "core/recovery.hpp"
#include "serve/batch_former.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/request.hpp"
#include "serve/request_queue.hpp"
#include "serve/telemetry.hpp"
#include "sim/accelerator.hpp"

namespace flashabft::serve {

struct ServerConfig {
  std::size_t num_workers = 2;
  std::size_t queue_capacity = 64;
  BatchFormerConfig batching{};
  /// Per-worker accelerator configuration; compare_granularity also selects
  /// the alarm granularity of the guarded path. Calibrate the detection
  /// thresholds (fault/calibrate.hpp) for the workload being served.
  AccelConfig accel{};
  RecoveryPolicy recovery{};
  /// Residual tolerance for verifying reference-fallback outputs.
  CheckerConfig fallback_checker{};
  CircuitBreakerConfig breaker{};
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerConfig config);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Submits a request; blocks while the queue is full (backpressure).
  /// Throws EnsureError if the server has been shut down.
  [[nodiscard]] std::future<ServeResponse> submit(ServeRequest request);

  /// Load-shedding submit: returns false (and counts a rejection) instead
  /// of blocking when the queue is full or the server is shut down.
  [[nodiscard]] bool try_submit(ServeRequest request,
                                std::future<ServeResponse>& out);

  /// Closes admission, drains in-flight requests, joins workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] const ServeTelemetry& telemetry() const { return telemetry_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Installs a standing fault plan on worker `worker_id`: it is applied
  /// (on top of each request's own plan) to every accelerator execution
  /// that worker performs — the model of a persistently defective device.
  /// Pass an empty plan to heal the worker.
  void set_worker_defect(std::size_t worker_id, FaultPlan defect);

  [[nodiscard]] bool worker_breaker_open(std::size_t worker_id) const;
  [[nodiscard]] std::size_t worker_breaker_trips(std::size_t worker_id) const;

 private:
  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
  };

  struct Worker {
    std::size_t id = 0;
    Accelerator accel;
    CircuitBreaker breaker;
    FaultPlan defect;                  ///< guarded by defect_mutex.
    mutable std::mutex defect_mutex;   ///< set_worker_defect vs. loop.
    mutable std::mutex breaker_mutex;  ///< external observers vs. loop.
    std::thread thread;

    Worker(std::size_t id_, const AccelConfig& accel_cfg,
           const CircuitBreakerConfig& breaker_cfg)
        : id(id_), accel(accel_cfg), breaker(breaker_cfg) {}
  };

  void worker_loop(Worker& worker);
  [[nodiscard]] ServeResponse execute(Worker& worker, ServeRequest& request,
                                      std::size_t batch_size);

  ServerConfig config_;
  BoundedMpmcQueue<Pending> queue_;
  ServeTelemetry telemetry_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> next_auto_id_{1};
  std::atomic<bool> shut_down_{false};
};

}  // namespace flashabft::serve
