// Continuous-batching decode scheduler over the checksum-protected paged
// KV pool.
//
// The legacy generation path (PR 3) advances one session per worker pass:
// every decode step takes a queue round-trip, a batch-forming deadline and
// a privately-owned contiguous KvCache reserved at admission. This
// scheduler is the production-serving alternative: one scheduler thread
// owns a shared `KvPagePool` and a run set of sessions, and every *tick*
// advances ALL schedulable sessions one token with a single layer-major
// `decode_step_batch` sweep — no per-token queue traffic, memory follows
// actual sequence length, and aggregate tokens/sec scales with concurrency
// instead of worker count.
//
// Admission flows through the server's `SessionTable` (bounded active set +
// age-ordered parking FIFO with the starvation guard); page pressure is
// handled by *preemption*: when the pool cannot back a session's next
// append (or a waiting session's prefill), a strictly-younger running
// session is parked — its pages released, its generated tokens kept — and
// later *resumed losslessly* by re-prefilling prompt + generated tokens
// (greedy decode is deterministic, so the rebuilt cache continues
// token-for-token; the drill tests pin this). The oldest session is never
// preempted and the pool always fits one full-length session, so progress
// is guaranteed.
//
// Every step runs under the same GuardedOp regime as the legacy path, plus
// the pool's `kKvPage` verification (page contents + page-table mapping,
// checkpoint-restore recovery) on every cached read. The legacy per-session
// path remains available behind `SchedulerMode::kLegacy` as the diverse
// fallback engine.
//
// Threading: the scheduler thread is the only toucher of the pool, the run
// set and session contents after activation; cross-thread handoff is the
// mutex-guarded ready queue (enqueue side) and the SessionTable's own lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "core/kv_pool.hpp"
#include "model/transformer_model.hpp"
#include "obs/hooks.hpp"
#include "scrub/scrubber.hpp"
#include "serve/session.hpp"
#include "serve/telemetry.hpp"

namespace flashabft::serve {

/// Which engine serves GenerationWork.
enum class SchedulerMode {
  kLegacy,      ///< PR 3 path: per-session contiguous cache, queue-driven.
  kContinuous,  ///< paged pool + continuous-batching scheduler thread.
};

[[nodiscard]] const char* scheduler_mode_name(SchedulerMode mode);
/// Parses "legacy" / "continuous" (the `--scheduler=` CLI values).
[[nodiscard]] std::optional<SchedulerMode> parse_scheduler_mode(
    std::string_view name);

/// Which running session loses its pages under page pressure. Victims are
/// always strictly younger (by admission order) than the session being
/// scheduled, so the oldest session always makes progress.
enum class PreemptionPolicy {
  kNewestFirst,  ///< LIFO victims: minimal wasted prefix work (default).
  kOldestFirst,  ///< oldest eligible victim first (stress-tests resume).
};

struct SchedulerConfig {
  SchedulerMode mode = SchedulerMode::kLegacy;
  /// Decode-batch cap: sessions advanced per tick (the "max batch tokens"
  /// of a one-token-per-session decode sweep). Excess sessions rotate in
  /// round-robin across ticks.
  std::size_t max_batch_tokens = 16;
  /// Token rows per pool page.
  std::size_t page_size = 16;
  /// Pool size; 0 derives the minimum that fits `max_sessions` full-length
  /// sessions (no page pressure). Size it smaller to exercise preemption.
  std::size_t num_pages = 0;
  /// Fixed KV byte budget; when > 0 it overrides `num_pages`: the pool is
  /// sized to KvPoolConfig::pages_for_budget(kv_budget_bytes) at the
  /// model's storage dtype. This is the knob the dtype benchmark holds
  /// constant while sweeping --dtype — half-width storage doubles the
  /// pages (and so the resident sessions) the same byte budget backs.
  std::size_t kv_budget_bytes = 0;
  PreemptionPolicy preemption = PreemptionPolicy::kNewestFirst;
  /// Shared-prefix KV caching: prefill pages are registered in the pool's
  /// refcounted read-only index and later sessions with a matching prompt
  /// prefix map them instead of recomputing (copy-on-write on first
  /// divergence, LRU eviction under page pressure). TTFT of a prefix hit
  /// collapses to the page walk plus one decode step.
  bool prefix_cache = true;
  /// Decode-sweep parallelism: the tick's batch is partitioned across this
  /// many threads (sessions are independent once pages are pre-reserved;
  /// slices under two sessions never spawn). 0 = resolved by the server to
  /// its worker count capped at hardware concurrency, so the continuous
  /// engine runs on the same thread budget as the legacy path it replaces;
  /// an explicit value is honored as-is.
  std::size_t sweep_threads = 0;
  /// Deterministic single-tick stepping: no scheduler thread is spawned
  /// and the owner drives every tick explicitly through `run_tick()`
  /// (sweep_threads forced to 1). The fault campaign runs the real
  /// scheduler this way so identical seeds replay identical tick orders.
  bool manual = false;
  /// Background scrubber over the running sessions' pages, page tables and
  /// sealed metadata: latent storage upsets are found and healed from the
  /// checkpoint mirrors *before* the next decode read trips on them. Manual
  /// mode runs one budgeted pass inline at the end of every tick (so
  /// campaign trials replay deterministically); thread mode runs a
  /// rate-limited scrub thread serialized with ticks.
  bool scrub = true;
  /// Items verified per scrub pass; 0 = the full walk every pass.
  std::size_t scrub_budget = 0;
  /// Thread mode: pacing between scrub passes.
  std::chrono::microseconds scrub_interval{200};
  /// Non-owning observability taps (the server copies its own here): tick /
  /// admission / prefill / decode-batch spans go to `trace`; preemptions,
  /// resumes, CoW forks and shared-page heal epochs to `flight`. Null = off.
  obs::TraceCollector* trace = nullptr;
  obs::FlightRecorder* flight = nullptr;
};

/// The continuous-batching engine. Owned by the server when
/// `SchedulerConfig::mode == kContinuous`; constructed lazily with the
/// shared TransformerModel.
class ContinuousScheduler {
 public:
  ContinuousScheduler(const SchedulerConfig& cfg,
                      const TransformerModel& model,
                      const GuardedExecutor::Options& executor_options,
                      SessionTable& sessions, ServeTelemetry& telemetry);
  ~ContinuousScheduler();

  ContinuousScheduler(const ContinuousScheduler&) = delete;
  ContinuousScheduler& operator=(const ContinuousScheduler&) = delete;

  /// Admits a session through the SessionTable *under the scheduler's
  /// lock*, so admission and shutdown are serialized: if this returns true
  /// the scheduler thread is guaranteed to still drain the session
  /// (activated, parked or promoted alike); if it returns false the drain
  /// has already been decided and `session` is handed back untouched for
  /// the caller to fail. Any thread.
  [[nodiscard]] bool admit(std::unique_ptr<GenerationSession>& session,
                           SessionAdmission& admission);

  /// Drains every admitted session (active, parked and waiting) to
  /// completion, then joins the scheduler thread. In manual mode there is
  /// no thread: the drain runs inline as repeated `run_tick()` calls.
  /// Idempotent.
  void shutdown();

  /// Manual mode only: runs exactly one scheduler tick on the calling
  /// thread and returns true while admitted sessions remain (i.e. another
  /// tick is needed). A stall guard fails waiting sessions that the pool
  /// provably cannot back (nothing running to preempt for several
  /// consecutive ticks), so driving `run_tick()` to false always
  /// terminates.
  [[nodiscard]] bool run_tick();

  /// Manual mode only: fails every admitted session (ready, running,
  /// waiting and parked) with `reason` — the tick-budget watchdog's escape
  /// hatch, so a wedged campaign trial can classify as crash/hang instead
  /// of hanging the destructor's drain.
  void abort_all(const std::string& reason);

  [[nodiscard]] const SchedulerConfig& config() const { return cfg_; }
  /// Pool shape for observability (the pool itself is scheduler-private).
  [[nodiscard]] std::size_t pool_pages() const { return pool_.num_pages(); }

 private:
  void loop();
  /// One scheduler iteration over `incoming` newly activated sessions.
  void tick(std::vector<GenerationSession*> incoming);
  /// Inserts into waiting_ keeping ascending age (sched_order).
  void insert_waiting(GenerationSession* session);
  /// Admits waiting sessions (oldest first) while the pool can back their
  /// prefill/resume, preempting younger running sessions as needed.
  void admit_waiting();
  /// Prefill (or lossless resume re-prefill) of a pageless session;
  /// finalizes it if the prefill produced its last token.
  void start_or_resume(GenerationSession& session);
  /// Advances up to max_batch_tokens running sessions one token.
  void decode_tick();
  /// Frees pages until `needed` are available using victims strictly
  /// younger than `requester_order`; false if no eligible victim remains.
  bool preempt_for(std::size_t needed, std::uint64_t requester_order);
  void preempt(GenerationSession* victim);
  /// Applies the session's KvCorruptions scheduled for `step_index` to its
  /// live pages / page tables (checksums left stale — real storage upsets).
  void apply_corruptions(GenerationSession& session, std::size_t step_index);
  /// The session's executor for `step_index`, tamper armed with that
  /// step's emulated faults.
  [[nodiscard]] GuardedExecutor make_step_executor(
      const GenerationSession& session, std::size_t step_index) const;
  /// Folds one pass's protected-op accounting into the session (shared by
  /// decode steps and resume re-prefills, which produce no new token).
  void absorb_report(GenerationSession& session, ModelReport report,
                     double service_us);
  /// Folds one control-plane/scrub LayerReport into the session.
  void absorb_control(GenerationSession& session, LayerReport report);
  /// Guarded verify of the session's sealed metadata (repairs from the
  /// mirror on alarm). Clean verifies are counted but stay out of the op
  /// stream; alarmed ones report through the session like any guarded op.
  bool verify_meta(GenerationSession& session);
  /// The scrubber's walk list: one metadata item plus one kKvPage item per
  /// layer for every running session. Items verify-and-heal and attribute
  /// findings to the owning session; they are fetched and executed within
  /// one pass under the scrub serialization, so the pointers stay live.
  [[nodiscard]] std::vector<scrub::ScrubItem> scrub_items();
  void publish_scrub();
  /// Folds one step's results into the session; true if it is done.
  bool absorb_step(GenerationSession& session, StepResult step,
                   std::size_t batch_size, double service_us);
  void finalize(GenerationSession* session);
  void fail(GenerationSession* session, std::exception_ptr error);
  void publish_page_usage();
  [[nodiscard]] std::size_t content_tokens(
      const GenerationSession& session) const;

  SchedulerConfig cfg_;
  const TransformerModel& model_;
  GuardedExecutor::Options executor_options_;
  SessionTable& sessions_;
  ServeTelemetry& telemetry_;
  KvPagePool pool_;
  /// Runs every control-plane verify and scrub item (meta seals report
  /// through self_verdict, so a tolerance-corrupted checker cannot blind
  /// them).
  GuardedExecutor control_executor_;
  /// Serializes scrub passes against ticks in thread mode: the loop holds
  /// it across tick(), the scrub thread across each pass.
  std::mutex scrub_mutex_;
  std::unique_ptr<scrub::Scrubber> scrubber_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<GenerationSession*> ready_;  ///< guarded by mutex_.
  bool stop_ = false;                      ///< guarded by mutex_.

  // Scheduler-thread-private state.
  std::deque<GenerationSession*> waiting_;  ///< pageless, ascending age.
  std::vector<GenerationSession*> running_; ///< holding pages, decode-ready.
  std::uint64_t next_order_ = 1;
  std::size_t rotate_ = 0;  ///< round-robin cursor over running_.
  std::size_t stall_ticks_ = 0;  ///< manual mode: no-progress tick streak.
  /// Last published prefix-cache gauges, for delta-triggered flight/trace
  /// events (CoW forks and shared-page heals are pool-internal, so the
  /// scheduler observes them as counter movement at publish points).
  std::uint64_t seen_cow_forks_ = 0;
  std::uint64_t seen_shared_heals_ = 0;

  std::thread thread_;
};

}  // namespace flashabft::serve
