// Generation sessions: the server-side state of in-flight autoregressive
// requests.
//
// A generation request is not one unit of work — it is a prefill followed
// by many single-token decode steps over a growing, checksummed KV cache.
// The server keeps that state here: each `GenerationSession` owns its
// cache, the tokens produced so far, the accumulated OpReport stream and
// the latency bookkeeping (TTFT, per-step service time). Between steps the
// session is *parked in the queue* as a DecodeStepWork continuation, so
// decode steps interleave with other traffic instead of pinning a worker.
//
// Concurrency is bounded: at most `max_active` sessions hold a KV cache at
// once. A session arriving beyond the bound waits in an admission FIFO
// (itself bounded by `max_parked` — beyond that the session is load-shed
// and its future fails) and is activated by whichever worker completes an
// active session — the completing worker drives the newly activated
// session's prefill itself.
//
// Sessions are addressed by a server-internal `key` (monotonic), never by
// the client-chosen request id, so duplicate request ids cannot collide in
// the table.
//
// Thread-safety: the table's map/FIFO/counters are mutex-guarded. A
// session's *contents* are not — exactly one continuation per session
// exists at any time (enforced by the re-enqueue protocol), so only one
// worker ever touches a session between activation and completion.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/kv_cache.hpp"
#include "core/kv_pool.hpp"
#include "core/meta_guard.hpp"
#include "serve/request.hpp"

namespace flashabft::serve {

/// The server-side state of one generation request.
struct GenerationSession {
  std::uint64_t key = 0;  ///< server-internal table/continuation address.
  std::uint64_t id = 0;   ///< client-visible request id (response.id).
  std::string category;
  GenerationWork work;
  std::promise<ServeResponse> promise;

  /// Built at activation (prefill); empty while parked. Legacy path only.
  std::unique_ptr<KvCache> cache;
  /// Continuous-batching path: the session's paged-pool handle (tables
  /// empty while it waits for pages) and preemption accounting.
  std::unique_ptr<PagedKv> paged;
  std::uint64_t sched_order = 0;  ///< scheduler age stamp (admission order).
  std::size_t preemptions = 0;  ///< times this session's pages were taken.
  std::size_t resumes = 0;      ///< lossless re-prefills after preemption.
  /// Prompt rows the first activation mapped from the shared-prefix index
  /// instead of prefilling (0 = cold miss or prefix caching off).
  std::size_t prefix_cached_tokens = 0;
  /// The sealed control-plane record: prompt, budget, generated tokens and
  /// step counter, verified at step/tick boundaries via
  /// `guarded_meta_verify`. Legitimate writes go through the accessors
  /// below; fault injection goes through `meta.raw()`.
  GuardedRecord<SessionMeta> meta;
  std::vector<double> final_logits; ///< last step's next-token logits.

  /// Seals prompt/budget from `work` into the record. Call once, after
  /// `work` is populated and before the first step.
  void seal_meta() {
    meta.mutate([this](SessionMeta& m) {
      m.prompt = work.prompt;
      m.max_new_tokens = work.max_new_tokens;
      m.tokens.clear();
      m.steps_done = 0;
    });
  }
  [[nodiscard]] const std::vector<std::size_t>& prompt() const {
    return meta.value().prompt;
  }
  [[nodiscard]] std::size_t max_new_tokens() const {
    return meta.value().max_new_tokens;
  }
  [[nodiscard]] const std::vector<std::size_t>& tokens() const {
    return meta.value().tokens;
  }
  [[nodiscard]] std::size_t steps_done() const {
    return meta.value().steps_done;
  }
  void push_token(std::size_t token) {
    meta.mutate([token](SessionMeta& m) { m.tokens.push_back(token); });
  }
  void count_step() {
    meta.mutate([](SessionMeta& m) { ++m.steps_done; });
  }

  // Latent-fault idle window (continuous scheduler): ticks this session
  // still sits out of the decode batch while its latent corruption waits
  // for the scrubber.
  std::size_t idle_ticks_left = 0;
  /// Steps whose latent window already ran (guards re-trigger while the
  /// step counter has not advanced).
  std::size_t latent_step_done = 0;

  // Scrub attribution: latent faults the scrubber found/healed on this
  // session's pages, tables and metadata.
  std::size_t scrub_faults_found = 0;
  std::size_t scrub_repairs = 0;
  std::size_t meta_verifies = 0;  ///< sealed-metadata checks executed.
  // Dual-modular glue accounting, accumulated across steps.
  std::size_t dmr_compares = 0;
  std::size_t dmr_mismatches = 0;

  Clock::time_point enqueue_time{};
  double queue_us = 0.0;    ///< admission -> first execution.
  double service_us = 0.0;  ///< accumulated per-step compute time.
  double ttft_us = 0.0;     ///< admission -> first token.

  /// Accumulated OpReport stream of every step (telemetry's view).
  std::vector<OpReport> all_reports;
  std::size_t op_executions = 0;
  std::size_t alarm_events = 0;
  std::size_t fallback_ops = 0;
  std::size_t recovered_ops = 0;
  bool checksum_clean = true;

  std::size_t worker_id = 0;   ///< last worker to run a step.
  std::size_t batch_size = 0;  ///< batch the last step rode in.

  [[nodiscard]] bool done() const {
    return meta.value().tokens.size() >= meta.value().max_new_tokens;
  }
};

/// Outcome of offering a session to the table.
struct SessionAdmission {
  /// The session now activated, if any — drive it. Under the starvation
  /// guard this may be an *older* parked session promoted into the free
  /// slot while the submitted one parks behind it.
  GenerationSession* activated = nullptr;
  /// True when the submitted session was parked (age-ordered FIFO).
  bool parked = false;
  /// Set when both the active set and the parked FIFO are full: the
  /// session was shed and handed back (fail its promise).
  std::unique_ptr<GenerationSession> shed;
};

/// Bounded-concurrency session registry with a bounded admission FIFO.
class SessionTable {
 public:
  SessionTable(std::size_t max_active, std::size_t max_parked);

  /// Admits `session`: activates it (assigning its table key) if a slot is
  /// free, parks it FIFO if there is parking room, or sheds it.
  ///
  /// Starvation guard: a free slot never lets a fresh admission overtake
  /// the parking FIFO. If sessions are parked when a slot is free (the
  /// continuous scheduler frees slots with `release` and activates later),
  /// the *oldest* parked session is promoted into the slot and the fresh
  /// one parks behind it — age-based promotion, so a long-parked session
  /// cannot be bypassed indefinitely by new arrivals.
  [[nodiscard]] SessionAdmission admit(
      std::unique_ptr<GenerationSession> session);

  /// The active session with table key `key`; throws if unknown (a
  /// continuation for a dead session is a protocol bug).
  [[nodiscard]] GenerationSession* find(std::uint64_t key) const;

  /// Removes active session `key`, returning its ownership plus the next
  /// parked session, if any, now activated in its slot (the caller must
  /// drive it).
  [[nodiscard]] std::pair<std::unique_ptr<GenerationSession>,
                          GenerationSession*>
  finish(std::uint64_t key);

  /// Removes active session `key` *without* activating a parked one — the
  /// continuous scheduler's completion path (it pulls parked sessions at
  /// tick boundaries via `try_activate_parked`, which is what makes the
  /// admit() starvation guard load-bearing).
  [[nodiscard]] std::unique_ptr<GenerationSession> release(std::uint64_t key);

  /// Activates the oldest parked session if a slot is free; nullptr
  /// otherwise. Call repeatedly to fill all free slots.
  [[nodiscard]] GenerationSession* try_activate_parked();

  [[nodiscard]] std::size_t max_active() const { return max_active_; }
  [[nodiscard]] std::size_t active() const;
  [[nodiscard]] std::size_t parked() const;
  [[nodiscard]] std::size_t peak_active() const;

 private:
  /// Registers `session` as active under a fresh key. Caller holds mutex_.
  [[nodiscard]] GenerationSession* activate_locked(
      std::unique_ptr<GenerationSession> session);

  const std::size_t max_active_;
  const std::size_t max_parked_;
  mutable std::mutex mutex_;
  std::uint64_t next_key_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<GenerationSession>>
      active_;
  std::deque<std::unique_ptr<GenerationSession>> parked_;
  std::size_t peak_active_ = 0;
};

}  // namespace flashabft::serve
