#include "serve/fault_surface.hpp"

#include <utility>

namespace flashabft::serve {

void apply_kv_corruptions(const GenerationWork& work, std::size_t step_index,
                          KvCache& cache) {
  for (const KvCorruption& c : work.kv_corruptions) {
    if (c.step != step_index) continue;
    KvCacheLayer& layer = cache.layer(c.layer % cache.num_layers());
    if (layer.len() == 0) continue;
    const std::size_t col = c.col % layer.width();
    if (c.checksum_state) {
      layer.corrupt_checksum(col, c.delta, c.value_side);
    } else if (c.value_side) {
      layer.corrupt_v(c.row % layer.len(), col, c.delta);
    } else {
      layer.corrupt_k(c.row % layer.len(), col, c.delta);
    }
  }
}

void apply_kv_corruptions(const GenerationWork& work, std::size_t step_index,
                          KvPagePool& pool, PagedKv& kv) {
  for (const KvCorruption& c : work.kv_corruptions) {
    if (c.step != step_index) continue;
    const std::size_t layer = c.layer % kv.num_layers();
    if (kv.len(layer) == 0) continue;
    const std::size_t row = c.row % kv.len(layer);
    const std::size_t col = c.col % pool.config().width;
    if (c.checksum_state) {
      if (c.page_table) {
        pool.corrupt_table_checksum(kv, layer, c.delta);
      } else {
        pool.corrupt_page_checksum(kv, layer, row, col, c.delta,
                                   c.value_side);
      }
    } else if (c.page_table) {
      if (pool.num_pages() < 2) continue;  // nowhere to redirect to.
      pool.corrupt_page_table(kv, layer, row,
                              1 + c.col % (pool.num_pages() - 1));
    } else if (c.value_side) {
      pool.corrupt_v(kv, layer, row, col, c.delta);
    } else {
      pool.corrupt_k(kv, layer, row, col, c.delta);
    }
  }
}

void apply_session_tampers(GenerationWork& work, std::size_t step_index,
                           std::vector<std::size_t>& generated,
                           std::size_t vocab_size) {
  for (const SessionTamper& t : work.tampers) {
    if (t.step != step_index) continue;
    switch (t.target) {
      case SessionTamper::Target::kGeneratedToken:
        if (!generated.empty() && vocab_size > 0) {
          std::size_t& token = generated[t.index % generated.size()];
          token = (token + t.delta) % vocab_size;
        }
        break;
      case SessionTamper::Target::kPromptToken:
        if (!work.prompt.empty() && vocab_size > 0) {
          std::size_t& token = work.prompt[t.index % work.prompt.size()];
          token = (token + t.delta) % vocab_size;
        }
        break;
      case SessionTamper::Target::kMaxNewTokens:
        // Shrink-only (range [1, budget]) so the session still terminates
        // and the engines cannot be driven past max_seq_len.
        if (work.max_new_tokens > 0) {
          work.max_new_tokens = 1 + t.delta % work.max_new_tokens;
        }
        break;
    }
  }
}

GuardedExecutor make_generation_step_executor(
    const GenerationWork& work, std::size_t step_index,
    const GuardedExecutor::Options& options) {
  GuardedExecutor executor(options);
  std::vector<LayerFault> step_faults;
  for (const GenerationStepFault& f : work.faults) {
    if (f.step == step_index) step_faults.push_back(f.fault);
  }
  if (!step_faults.empty()) {
    executor.set_tamper(make_layer_fault_tamper(std::move(step_faults)));
  }
  return executor;
}

}  // namespace flashabft::serve
