#include "serve/fault_surface.hpp"

#include <algorithm>
#include <utility>

namespace flashabft::serve {

void apply_kv_corruptions(const GenerationWork& work, std::size_t step_index,
                          KvCache& cache, bool latent) {
  for (const KvCorruption& c : work.kv_corruptions) {
    if (c.step != step_index || c.latent != latent) continue;
    KvCacheLayer& layer = cache.layer(c.layer % cache.num_layers());
    if (layer.len() == 0) continue;
    const std::size_t col = c.col % layer.width();
    if (c.checksum_state) {
      layer.corrupt_checksum(col, c.delta, c.value_side);
    } else if (c.value_side) {
      layer.corrupt_v(c.row % layer.len(), col, c.delta);
    } else {
      layer.corrupt_k(c.row % layer.len(), col, c.delta);
    }
  }
}

void apply_kv_corruptions(const GenerationWork& work, std::size_t step_index,
                          KvPagePool& pool, PagedKv& kv, bool latent) {
  for (const KvCorruption& c : work.kv_corruptions) {
    if (c.step != step_index || c.latent != latent) continue;
    const std::size_t layer = c.layer % kv.num_layers();
    if (kv.len(layer) == 0) continue;
    // Shared-prefix trials pin the upset inside the rows backed by shared
    // pages, so the single corruption is read by every co-reader of the
    // prefix. Falls back to the whole cache when nothing is shared (e.g.
    // the tail was already forked private).
    const std::size_t row_space =
        c.shared_prefix && kv.shared_len(layer) > 0 ? kv.shared_len(layer)
                                                    : kv.len(layer);
    const std::size_t row = c.row % row_space;
    const std::size_t col = c.col % pool.config().width;
    if (c.checksum_state) {
      if (c.page_table) {
        pool.corrupt_table_checksum(kv, layer, c.delta);
      } else {
        pool.corrupt_page_checksum(kv, layer, row, col, c.delta,
                                   c.value_side);
      }
    } else if (c.page_table) {
      if (pool.num_pages() < 2) continue;  // nowhere to redirect to.
      pool.corrupt_page_table(kv, layer, row,
                              1 + c.col % (pool.num_pages() - 1));
    } else if (c.value_side) {
      pool.corrupt_v(kv, layer, row, col, c.delta);
    } else {
      pool.corrupt_k(kv, layer, row, col, c.delta);
    }
  }
}

bool has_latent_corruption(const GenerationWork& work,
                           std::size_t step_index) {
  for (const KvCorruption& c : work.kv_corruptions) {
    if (c.latent && c.step == step_index) return true;
  }
  return false;
}

void apply_session_tampers(const GenerationWork& work, SessionMeta& meta,
                           std::size_t step_index, std::size_t vocab_size) {
  for (const SessionTamper& t : work.tampers) {
    if (t.step != step_index) continue;
    switch (t.target) {
      case SessionTamper::Target::kGeneratedToken:
        if (!meta.tokens.empty() && vocab_size > 0) {
          std::size_t& token = meta.tokens[t.index % meta.tokens.size()];
          token = (token + t.delta) % vocab_size;
        }
        break;
      case SessionTamper::Target::kPromptToken:
        if (!meta.prompt.empty() && vocab_size > 0) {
          std::size_t& token = meta.prompt[t.index % meta.prompt.size()];
          token = (token + t.delta) % vocab_size;
        }
        break;
      case SessionTamper::Target::kMaxNewTokens:
        // Shrink-only (range [1, budget]) so the session still terminates
        // and the engines cannot be driven past max_seq_len.
        if (meta.max_new_tokens > 0) {
          meta.max_new_tokens = 1 + t.delta % meta.max_new_tokens;
        }
        break;
    }
  }
}

IdleScrubOutcome scrub_idle_window(KvCache& cache,
                                   GuardedRecord<SessionMeta>& meta,
                                   std::size_t idle_ticks,
                                   const GuardedExecutor& executor) {
  IdleScrubOutcome out;
  // Shared item epilogue: clean passes vanish, alarmed ones are counted
  // and their reports kept (the caller folds them into the session's
  // accounting, so a scrub-found fault is a *detected* fault).
  const auto classify = [&out](LayerReport report) {
    const OpReport& op = report.ops.front();
    if (op.recovery == RecoveryStatus::kCleanFirstTry) {
      return scrub::ItemOutcome::kClean;
    }
    ++out.faults_found;
    scrub::ItemOutcome outcome = scrub::ItemOutcome::kUnrepairable;
    if (op.recovery == RecoveryStatus::kRecovered) {
      ++out.repairs;
      outcome = scrub::ItemOutcome::kRepaired;
    } else {
      out.clean = false;
    }
    out.reports.insert(out.reports.end(),
                       std::make_move_iterator(report.ops.begin()),
                       std::make_move_iterator(report.ops.end()));
    return outcome;
  };
  scrub::Scrubber scrubber(
      [&] {
        std::vector<scrub::ScrubItem> items;
        for (std::size_t layer = 0; layer < cache.num_layers(); ++layer) {
          items.push_back({[&, layer] {
            LayerReport report;
            (void)guarded_cache_verify(cache.layer(layer), layer, executor,
                                       report);
            return classify(std::move(report));
          }});
        }
        items.push_back({[&] {
          LayerReport report;
          (void)guarded_meta_verify(meta, /*index=*/0, executor, report);
          return classify(std::move(report));
        }});
        return items;
      },
      scrub::Scrubber::Options{});
  const std::size_t passes = std::max<std::size_t>(1, idle_ticks);
  for (std::size_t pass = 0; pass < passes; ++pass) {
    out.items_scrubbed += scrubber.run_tick();
  }
  return out;
}

GuardedExecutor make_generation_step_executor(
    const GenerationWork& work, std::size_t step_index,
    const GuardedExecutor::Options& options) {
  GuardedExecutor executor(options);
  std::vector<LayerFault> step_faults;
  for (const GenerationStepFault& f : work.faults) {
    if (f.step == step_index) step_faults.push_back(f.fault);
  }
  if (!step_faults.empty()) {
    executor.set_tamper(make_layer_fault_tamper(std::move(step_faults)));
  }
  return executor;
}

}  // namespace flashabft::serve
