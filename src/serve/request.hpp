// Request/response types of the fault-tolerant serving engine.
//
// A request carries one of two payloads:
//   * AttentionWork — H per-head Q/K/V bundles plus an optional fault plan
//     (the upsets the cycle-level simulator applies while executing it), or
//   * LayerWork — a full protected decoder-layer forward (embeddings +
//     encoder memory), every checkable op of which (projections, per-head
//     attention, FFN) runs through the worker's GuardedExecutor.
// The response carries the accepted outputs, how they were produced, and
// the unified per-op OpReport stream telemetry reconciles alarms, retries
// and escalations against.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "attention/inputs.hpp"
#include "core/guarded_op.hpp"
#include "sim/fault_plan.hpp"
#include "tensor/matrix.hpp"

namespace flashabft::serve {

using Clock = std::chrono::steady_clock;

/// Raw attention-head work: one decoder layer's attention executed on the
/// worker's cycle-level accelerator.
struct AttentionWork {
  /// The layer's heads, in head order; all heads share one shape.
  std::vector<AttentionInputs> heads;
  /// Faults applied to the first accelerator execution, with layer-global
  /// cycles (run_heads windows). Empty plan = fault-free request.
  FaultPlan faults;
  /// If true the plan models a persistent defect: it is re-applied on every
  /// retry, so head re-execution cannot succeed and the request escalates
  /// to the reference fallback.
  bool faults_persistent = false;
};

/// Emulated fault for a decoder-layer request. The software layer path has
/// no bit-level injector; instead the worker's GuardedExecutor tamper hook
/// corrupts the targeted op's output (and its readout checksum) the way a
/// datapath fault would, for the first `faulty_attempts` attempts — set it
/// above RecoveryPolicy::max_retries to model a persistent defect that
/// escalates to the reference fallback.
struct LayerFault {
  OpKind kind = OpKind::kAttentionFlashAbft;
  std::size_t op_index = 0;        ///< OpReport index within the layer.
  std::size_t faulty_attempts = 1; ///< corrupted attempts (1 = transient).
  double magnitude = 1e-3;         ///< output/checksum shift.
};

/// A full protected decoder-layer forward.
struct LayerWork {
  MatrixD x;       ///< decoder-side embeddings, n x model_dim.
  MatrixD memory;  ///< encoder output attended to, n_src x model_dim.
  std::vector<LayerFault> faults;  ///< emulated faults (empty = clean).
};

/// How a request's accepted outputs were produced.
enum class ServePath {
  /// Guarded path, no alarm on the first execution of any op.
  kGuardedClean,
  /// Guarded path; one or more ops alarmed and their re-execution passed
  /// the check (transient upset recovered).
  kGuardedRecovered,
  /// Escalated (every retry alarmed) or circuit-breaker bypass: the
  /// affected ops were served by the software Alg. 3 reference kernel.
  kFallbackReference,
};

[[nodiscard]] const char* serve_path_name(ServePath path);

/// Typed admission outcome of try_submit.
enum class SubmitResult {
  kAccepted,
  kQueueFull,  ///< shed: admission queue at capacity.
  kShutDown,   ///< rejected: server no longer admits work.
};

[[nodiscard]] const char* submit_result_name(SubmitResult result);

/// One inference request: attention-head work or a decoder-layer forward.
struct ServeRequest {
  std::uint64_t id = 0;
  std::string category;  ///< workload category tag (telemetry only).
  std::variant<AttentionWork, LayerWork> work = AttentionWork{};
  /// Stamped at admission (submit/try_submit); queue-latency telemetry.
  Clock::time_point enqueue_time{};
};

/// The completed result of one request.
struct ServeResponse {
  std::uint64_t id = 0;
  ServePath path = ServePath::kGuardedClean;
  /// Attention work: per-head outputs, head order. Layer work: one matrix,
  /// the layer output.
  std::vector<MatrixD> outputs;
  /// Unified per-op reports (guarded ops + any fallback ops) — the stream
  /// telemetry's per-op-kind accounting consumes.
  std::vector<OpReport> reports;
  std::size_t op_executions = 0;  ///< guarded op-runs including retries.
  std::size_t alarm_events = 0;   ///< op-alarm observations, all attempts.
  std::size_t fallback_ops = 0;   ///< ops served by the reference kernel.
  /// True iff every accepted op output passed its checksum comparison
  /// (guarded ops: no alarm on the accepted run; fallback ops: the
  /// reference kernel's own residual check).
  bool checksum_clean = false;
  std::size_t worker_id = 0;
  std::size_t batch_size = 0;  ///< size of the batch this request rode in.
  double queue_us = 0.0;       ///< enqueue -> execution start.
  double service_us = 0.0;     ///< execution start -> completion.
  double total_us = 0.0;       ///< enqueue -> completion.
};

}  // namespace flashabft::serve
