// Request/response types of the fault-tolerant serving engine.
//
// A request is one decoder layer's attention work: H per-head Q/K/V bundles
// plus an optional fault plan (the upsets the cycle-level simulator applies
// while executing it). The response carries the accepted outputs, how they
// were produced — guarded accelerator path, head re-execution, or the
// software reference fallback — and enough accounting for telemetry to
// reconcile alarms, retries and escalations against the injected plan.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "attention/inputs.hpp"
#include "sim/fault_plan.hpp"
#include "tensor/matrix.hpp"

namespace flashabft::serve {

using Clock = std::chrono::steady_clock;

/// How a request's accepted outputs were produced.
enum class ServePath {
  /// Accelerator path, no alarm on the first execution.
  kGuardedClean,
  /// Accelerator path; one or more heads alarmed and their re-execution
  /// passed the check (transient upset recovered).
  kGuardedRecovered,
  /// Escalated (every retry alarmed) or circuit-breaker bypass: the
  /// affected heads were served by the software Alg. 3 reference kernel.
  kFallbackReference,
};

[[nodiscard]] const char* serve_path_name(ServePath path);

/// One attention/decoder-layer inference request.
struct ServeRequest {
  std::uint64_t id = 0;
  std::string category;  ///< workload category tag (telemetry only).
  /// The layer's heads, in head order; all heads share one shape.
  std::vector<AttentionInputs> heads;
  /// Faults applied to the first accelerator execution, with layer-global
  /// cycles (run_heads windows). Empty plan = fault-free request.
  FaultPlan faults;
  /// If true the plan models a persistent defect: it is re-applied on every
  /// retry, so head re-execution cannot succeed and the request escalates
  /// to the reference fallback.
  bool faults_persistent = false;
  /// Stamped by InferenceServer::submit; used for queue-latency telemetry.
  Clock::time_point enqueue_time{};
};

/// The completed result of one request.
struct ServeResponse {
  std::uint64_t id = 0;
  ServePath path = ServePath::kGuardedClean;
  std::vector<MatrixD> outputs;  ///< per-head attention outputs, head order.
  std::size_t head_executions = 0;  ///< accelerator head-runs incl. retries.
  std::size_t alarm_events = 0;     ///< head-alarm observations, all attempts.
  std::size_t fallback_heads = 0;   ///< heads served by the reference kernel.
  /// True iff every accepted head output passed its checksum comparison
  /// (accelerator heads: no alarm under the configured granularity;
  /// fallback heads: the reference kernel's own residual check).
  bool checksum_clean = false;
  std::size_t worker_id = 0;
  std::size_t batch_size = 0;  ///< size of the batch this request rode in.
  double queue_us = 0.0;       ///< enqueue -> execution start.
  double service_us = 0.0;     ///< execution start -> completion.
  double total_us = 0.0;       ///< enqueue -> completion.
};

}  // namespace flashabft::serve
