// Request/response types of the fault-tolerant serving engine.
//
// A request carries one of three external payloads:
//   * AttentionWork — H per-head Q/K/V bundles plus an optional fault plan
//     (the upsets the cycle-level simulator applies while executing it),
//   * LayerWork — a full protected decoder-layer forward (embeddings +
//     encoder memory), every checkable op of which (projections, per-head
//     attention, FFN) runs through the worker's GuardedExecutor, or
//   * GenerationWork — an autoregressive generation session: prefill over
//     the prompt, then resumable single-token decode steps over the
//     session's checksummed KV cache (DecodeStepWork is the internal
//     continuation the server re-enqueues between steps).
// The response carries the accepted outputs, how they were produced, and
// the unified per-op OpReport stream telemetry reconciles alarms, retries
// and escalations against.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "attention/inputs.hpp"
#include "core/guarded_op.hpp"
#include "sim/fault_plan.hpp"
#include "tensor/matrix.hpp"

namespace flashabft::serve {

using Clock = std::chrono::steady_clock;

/// Raw attention-head work: one decoder layer's attention executed on the
/// worker's cycle-level accelerator.
struct AttentionWork {
  /// The layer's heads, in head order; all heads share one shape.
  std::vector<AttentionInputs> heads;
  /// Faults applied to the first accelerator execution, with layer-global
  /// cycles (run_heads windows). Empty plan = fault-free request.
  FaultPlan faults;
  /// If true the plan models a persistent defect: it is re-applied on every
  /// retry, so head re-execution cannot succeed and the request escalates
  /// to the reference fallback.
  bool faults_persistent = false;
};

/// Emulated fault for a decoder-layer request. The software layer path has
/// no bit-level injector; instead the worker's GuardedExecutor tamper hook
/// corrupts the targeted op's output (and its readout checksum) the way a
/// datapath fault would, for the first `faulty_attempts` attempts — set it
/// above RecoveryPolicy::max_retries to model a persistent defect that
/// escalates to the reference fallback.
struct LayerFault {
  OpKind kind = OpKind::kAttentionFlashAbft;
  std::size_t op_index = 0;        ///< OpReport index within the layer.
  std::size_t faulty_attempts = 1; ///< corrupted attempts (1 = transient).
  double magnitude = 1e-3;         ///< output/checksum shift.
  /// When true only the readout checksum is shifted — the output stays
  /// correct, so the alarm is a false positive. Models an upset in the
  /// checksum datapath itself (the campaign's checksum-state subsystem).
  bool checksum_only = false;
};

/// Builds the emulated datapath-upset tamper hook shared by decoder-layer
/// requests, legacy generation steps and continuous-scheduler ticks: shifts
/// one output element and the readout checksum of every matching op for its
/// first `faulty_attempts` attempts.
[[nodiscard]] inline GuardedExecutor::Tamper make_layer_fault_tamper(
    std::vector<LayerFault> faults) {
  return [faults = std::move(faults)](OpKind kind, std::size_t index,
                                      std::size_t attempt, CheckedOp& op) {
    for (const LayerFault& fault : faults) {
      if (fault.kind != kind || fault.op_index != index ||
          attempt >= fault.faulty_attempts) {
        continue;
      }
      if (!fault.checksum_only) op.output(0, 0) += fault.magnitude;
      op.check.actual += fault.magnitude;
      op.self_verdict.reset();
    }
  };
}

/// A full protected decoder-layer forward.
struct LayerWork {
  MatrixD x;       ///< decoder-side embeddings, n x model_dim.
  MatrixD memory;  ///< encoder output attended to, n_src x model_dim.
  std::vector<LayerFault> faults;  ///< emulated faults (empty = clean).
};

/// An emulated op fault scoped to one step of a generation session:
/// step 0 is the prefill, step s >= 1 the s-th decode step. `fault` uses
/// the model's *global* op indices (heads layer*H+h, projections
/// layer*4+slot, FFN layer*2+{0,1}, cache checks layer, LM head
/// num_layers*4), so one (kind, index) pair names one op in the stack.
struct GenerationStepFault {
  std::size_t step = 0;
  LayerFault fault;
};

/// A KV-cache storage upset: one element of the session's live cache is
/// shifted (running checksums left stale) just before decode step `step`
/// reads it. The cache checksum must detect it and re-materialize from the
/// checkpoint. `row`/`col` are taken modulo the cache's length/width at
/// injection time.
struct KvCorruption {
  std::size_t step = 1;   ///< decode step (>= 1) that reads the bad cache.
  std::size_t layer = 0;  ///< decoder layer, modulo num_layers.
  std::size_t row = 0;
  std::size_t col = 0;
  double delta = 1.0;       ///< element shift.
  bool value_side = false;  ///< corrupt V instead of K.
  /// Continuous scheduler only: corrupt the *page-table entry* covering
  /// `row` (redirecting it to another pool page, checksums left stale)
  /// instead of page data — the mapping upset only the kKvPage table
  /// checksum can detect. Ignored on the legacy contiguous-cache path,
  /// which has no page table.
  bool page_table = false;
  /// Corrupt the *checksum state* instead of the protected data: the
  /// running column sum covering (row, col) — or, with `page_table`, the
  /// table's running weighted sum — is shifted while the data stays clean.
  /// The next verify raises a false alarm and restoration rebuilds the
  /// sums. On the legacy path `page_table` is ignored (no table exists).
  bool checksum_state = false;
  /// Latent-fault trial: the corruption lands while the session then sits
  /// *idle* for `GenerationWork::latent_idle_ticks` ticks before its next
  /// decode read. The exposure window belongs to the background scrubber,
  /// which should find and heal the fault before the read ever sees it.
  bool latent = false;
  /// Continuous scheduler with prefix caching only: land the upset inside
  /// the session's *shared-prefix* rows (`row` taken modulo the shared
  /// length), so the single corrupted page is read by every co-reader —
  /// each must alarm, and the page must heal exactly once. Falls back to
  /// the whole cache when the session maps no shared rows; ignored (a
  /// plain data upset) on the legacy contiguous-cache path.
  bool shared_prefix = false;
};

/// A scheduler/session-metadata upset: unprotected bookkeeping of one
/// generation session is tampered just before step `step` runs. No
/// checksum covers this state today — the campaign's scheduler-state
/// subsystem measures exactly how much silent corruption that admits.
struct SessionTamper {
  enum class Target {
    kGeneratedToken,  ///< shift a produced token id (mod vocab).
    kPromptToken,     ///< shift a prompt token id (mod vocab).
    kMaxNewTokens,    ///< shrink the generation budget (mod original).
  };
  std::size_t step = 1;  ///< applied just before this step executes.
  Target target = Target::kGeneratedToken;
  std::size_t index = 0;  ///< which token, modulo the live count.
  std::size_t delta = 1;  ///< id/budget shift; 0 is a no-op.
};

/// An autoregressive generation session: greedy decode of
/// `max_new_tokens` tokens from `prompt` through the server's protected
/// TransformerModel, one resumable step at a time.
struct GenerationWork {
  std::vector<std::size_t> prompt;  ///< token ids (model.encode for text).
  std::size_t max_new_tokens = 8;
  std::vector<GenerationStepFault> faults;   ///< emulated op faults.
  std::vector<KvCorruption> kv_corruptions;  ///< cache upsets between steps.
  std::vector<SessionTamper> tampers;        ///< session-metadata upsets.
  /// Idle window (in ticks/steps) a `KvCorruption::latent` upset sits
  /// unread before the session resumes — the scrubber's race to win.
  std::size_t latent_idle_ticks = 0;
};

/// Internal continuation payload: one decode step of an active session,
/// re-enqueued by the server so sessions interleave with other traffic.
/// Never submitted by clients.
struct DecodeStepWork {
  std::uint64_t session_id = 0;
};

/// How a request's accepted outputs were produced.
enum class ServePath {
  /// Guarded path, no alarm on the first execution of any op.
  kGuardedClean,
  /// Guarded path; one or more ops alarmed and their re-execution passed
  /// the check (transient upset recovered).
  kGuardedRecovered,
  /// Escalated (every retry alarmed) or circuit-breaker bypass: the
  /// affected ops were served by the software Alg. 3 reference kernel.
  kFallbackReference,
};

[[nodiscard]] const char* serve_path_name(ServePath path);

/// Typed admission outcome of try_submit.
enum class SubmitResult {
  kAccepted,
  kQueueFull,  ///< shed: admission queue at capacity.
  kShutDown,   ///< rejected: server no longer admits work.
};

[[nodiscard]] const char* submit_result_name(SubmitResult result);

/// One inference request: attention-head work, a decoder-layer forward, or
/// a generation session (DecodeStepWork is internal-only).
struct ServeRequest {
  std::uint64_t id = 0;
  std::string category;  ///< workload category tag (telemetry only).
  std::variant<AttentionWork, LayerWork, GenerationWork, DecodeStepWork>
      work = AttentionWork{};
  /// Stamped at admission (submit/try_submit); queue-latency telemetry.
  Clock::time_point enqueue_time{};
};

/// The completed result of one request.
struct ServeResponse {
  std::uint64_t id = 0;
  ServePath path = ServePath::kGuardedClean;
  /// Attention work: per-head outputs, head order. Layer work: one matrix,
  /// the layer output.
  std::vector<MatrixD> outputs;
  /// Unified per-op reports (guarded ops + any fallback ops) — the stream
  /// telemetry's per-op-kind accounting consumes.
  std::vector<OpReport> reports;
  std::size_t op_executions = 0;  ///< guarded op-runs including retries.
  std::size_t alarm_events = 0;   ///< op-alarm observations, all attempts.
  std::size_t fallback_ops = 0;   ///< ops served by the reference kernel.
  /// True iff every accepted op output passed its checksum comparison
  /// (guarded ops: no alarm on the accepted run; fallback ops: the
  /// reference kernel's own residual check).
  bool checksum_clean = false;
  std::size_t worker_id = 0;
  std::size_t batch_size = 0;  ///< size of the batch this request rode in.
  double queue_us = 0.0;       ///< enqueue -> execution start.
  double service_us = 0.0;     ///< execution start -> completion.
  double total_us = 0.0;       ///< enqueue -> completion.

  // Generation sessions only:
  std::vector<std::size_t> tokens;  ///< generated ids (prompt excluded).
  std::size_t decode_steps = 0;     ///< steps after the prefill.
  /// Last step's next-token logits — the campaign's divergence oracle.
  std::vector<double> final_logits;
  double ttft_us = 0.0;             ///< enqueue -> first token (prefill).
  // Continuous scheduler only:
  std::size_t preemptions = 0;  ///< times the session lost its pages.
  std::size_t resumes = 0;      ///< lossless re-prefills after preemption.
  /// Prompt rows mapped from the shared-prefix index instead of being
  /// recomputed by the prefill (0 = cold miss or prefix caching off).
  std::size_t prefix_cached_tokens = 0;
  // Scrub / control-plane accounting (both engines):
  std::size_t meta_verifies = 0;       ///< sealed-metadata checks executed.
  std::size_t scrub_faults_found = 0;  ///< latent faults the scrubber hit.
  std::size_t scrub_repairs = 0;       ///< of those, healed from mirrors.
  std::size_t dmr_compares = 0;        ///< dual-run glue comparisons.
  std::size_t dmr_mismatches = 0;      ///< of those, bitwise divergences.
};

}  // namespace flashabft::serve
