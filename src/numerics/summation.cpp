#include "numerics/summation.hpp"

#include <cmath>

namespace flashabft {

double compensated_sum(std::span<const double> values) {
  CompensatedSum acc;
  for (const double v : values) acc.add(v);
  return acc.value();
}

double pairwise_sum(std::span<const double> values) {
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  if (n == 1) return values[0];
  if (n == 2) return values[0] + values[1];
  const std::size_t half = n / 2;
  return pairwise_sum(values.subspan(0, half)) +
         pairwise_sum(values.subspan(half));
}

double sequential_sum(std::span<const double> values) {
  double acc = 0.0;
  for (const double v : values) acc += v;
  return acc;
}

}  // namespace flashabft
