#include "numerics/dtype.hpp"

namespace flashabft {

const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kF32: return "f32";
    case DType::kBf16: return "bf16";
    case DType::kF16: return "f16";
  }
  return "unknown";
}

std::optional<DType> parse_dtype(std::string_view name) {
  if (name == "f32" || name == "fp32" || name == "float32") {
    return DType::kF32;
  }
  if (name == "bf16" || name == "bfloat16") return DType::kBf16;
  if (name == "f16" || name == "fp16" || name == "float16") {
    return DType::kF16;
  }
  return std::nullopt;
}

}  // namespace flashabft
