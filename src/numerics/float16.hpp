// Software IEEE-754 binary16 (half precision).
//
// Not used by the paper's accelerator (which stores bf16) but needed for the
// register-width ablation of DESIGN.md §5: fp16 trades exponent range for
// mantissa precision, which moves both the fault-free checksum residual and
// the per-bit fault observability — the two sides of the §4(c) trade-off.
#pragma once

#include <cstdint>

namespace flashabft {

/// A 16-bit IEEE half: 1 sign, 5 exponent, 10 mantissa bits. Conversions
/// use round-to-nearest-even and preserve Inf/NaN; overflow saturates to
/// infinity, underflow denormalizes then flushes to zero below 2^-24.
class fp16 {
 public:
  constexpr fp16() = default;

  /// Rounds a binary32 value to the nearest half (RNE).
  explicit fp16(float value) : bits_(round_bits(value)) {}

  static constexpr fp16 from_bits(std::uint16_t bits) {
    fp16 h;
    h.bits_ = bits;
    return h;
  }

  /// Exact widening conversion to binary32.
  [[nodiscard]] float to_float() const;

  [[nodiscard]] constexpr std::uint16_t bits() const { return bits_; }

  /// Rounds a float through fp16 precision and widens back.
  static float round(float value) { return fp16(value).to_float(); }

  [[nodiscard]] bool is_nan() const {
    return (bits_ & 0x7C00) == 0x7C00 && (bits_ & 0x03FF) != 0;
  }
  [[nodiscard]] bool is_inf() const {
    return (bits_ & 0x7C00) == 0x7C00 && (bits_ & 0x03FF) == 0;
  }

  friend constexpr bool operator==(fp16 a, fp16 b) {
    return a.bits_ == b.bits_;
  }

  static constexpr int kMantissaBits = 10;
  static constexpr int kExponentBits = 5;
  static constexpr int kStorageBits = 16;

 private:
  static std::uint16_t round_bits(float value);

  std::uint16_t bits_ = 0;
};

static_assert(sizeof(fp16) == 2, "fp16 must be exactly 16 bits of storage");

}  // namespace flashabft
