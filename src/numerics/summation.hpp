// Compensated and hierarchical summation.
//
// Checksum comparisons in ABFT hinge on the fault-free residual between two
// differently-ordered sums being far below the detection threshold. The
// library offers Neumaier (improved Kahan) and pairwise summation so golden
// paths can bound rounding independently of the simulated datapath order.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

namespace flashabft {

/// Running Neumaier-compensated accumulator; ~exact for long attention sums.
class CompensatedSum {
 public:
  /// Adds one term, tracking the lost low-order part.
  void add(double value) {
    const double t = sum_ + value;
    if (std::abs(sum_) >= std::abs(value)) {
      compensation_ += (sum_ - t) + value;
    } else {
      compensation_ += (value - t) + sum_;
    }
    sum_ = t;
  }

  /// The compensated total.
  [[nodiscard]] double value() const { return sum_ + compensation_; }

  void reset() { sum_ = 0.0; compensation_ = 0.0; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Neumaier-compensated sum of a contiguous range.
[[nodiscard]] double compensated_sum(std::span<const double> values);

/// Pairwise (cascade) summation — the rounding profile of an adder tree,
/// which is how the checker's sum-row unit reduces a value vector in one
/// cycle (Fig. 3's Σ block).
[[nodiscard]] double pairwise_sum(std::span<const double> values);

/// Plain left-to-right sum — the rounding profile of a sequential
/// accumulator register.
[[nodiscard]] double sequential_sum(std::span<const double> values);

}  // namespace flashabft
