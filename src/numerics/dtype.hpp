// Runtime-selectable storage dtype for weights and KV state.
//
// The serving stack computes in the wide accumulator format (binary64
// throughout `MatrixD`) and *stores* tensors — weights at model
// construction, kernel outputs at register write-back, K/V rows on cache
// append — in the selected storage format. `DType::kF32` is the
// full-precision baseline: storage is the accumulator format itself, the
// rounding hook is the identity, and every result stays bit-identical to
// the pre-dtype code path (the golden-parity tests pin this). `kBf16` and
// `kF16` model the mixed-precision hardware regime of the paper's
// accelerator (§IV-A: low-precision operands, wide accumulation, rounding
// on result-register write-back) through the bit-exact software formats in
// `numerics/bfloat16.hpp` / `numerics/float16.hpp`.
//
// Narrowing goes double -> float (RNE) -> 16-bit format (RNE), exactly the
// path a real datapath takes when an fp32 accumulator register is written
// back to 16-bit storage.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>

#include "numerics/bfloat16.hpp"
#include "numerics/float16.hpp"

namespace flashabft {

/// Storage format of weights, kernel outputs and cached K/V rows.
enum class DType {
  kF32 = 0,  ///< full-precision baseline: no narrowing, bit-identical.
  kBf16,     ///< 1/8/7 brain float (the paper accelerator's format).
  kF16,      ///< 1/5/10 IEEE half (the DESIGN.md §5 ablation format).
};
inline constexpr std::size_t kDTypeCount = 3;

/// "f32" / "bf16" / "f16" — the `--dtype=` CLI values.
[[nodiscard]] const char* dtype_name(DType dtype);
[[nodiscard]] std::optional<DType> parse_dtype(std::string_view name);

/// Modeled storage bytes per element — what the KV pool's byte budget
/// accounting charges per stored value (the emulation keeps binary64
/// backing storage; capacity planning follows the modeled format).
[[nodiscard]] constexpr std::size_t dtype_storage_bytes(DType dtype) {
  return dtype == DType::kF32 ? 4 : 2;
}

/// Unit roundoff u of the storage format: |round(x) - x| <= u * |x| for
/// normal x. Zero for kF32 — that regime never narrows, so storage
/// quantization contributes no residual (only binary64 reduction noise,
/// which the calibration floor covers).
[[nodiscard]] constexpr double dtype_unit_roundoff(DType dtype) {
  switch (dtype) {
    case DType::kF32: return 0.0;
    case DType::kBf16: return 1.0 / 256.0;    // 2^-(7+1)
    case DType::kF16: return 1.0 / 2048.0;    // 2^-(10+1)
  }
  return 0.0;
}

/// Rounds one wide-accumulator value through the storage format and widens
/// back — the register write-back hook every dtype-aware kernel applies to
/// values it materializes. Identity for kF32.
[[nodiscard]] inline double dtype_round(double value, DType dtype) {
  switch (dtype) {
    case DType::kF32: return value;
    case DType::kBf16: return double(bf16::round(float(value)));
    case DType::kF16: return double(fp16::round(float(value)));
  }
  return value;
}

/// In-place write-back rounding of a stored row/tile. No-op for kF32.
inline void dtype_round_span(std::span<double> values, DType dtype) {
  if (dtype == DType::kF32) return;
  for (double& v : values) v = dtype_round(v, dtype);
}

}  // namespace flashabft
