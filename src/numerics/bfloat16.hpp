// Software bfloat16: the storage format of the accelerator datapath.
//
// The paper's accelerator ("Arithmetic operators inside the accelerator refer
// to reduced precision BFloat16 format", §IV-A) stores query/key/value
// elements as bfloat16. Fault injection flips bits of these 16-bit registers,
// so the type is bit-exact: 1 sign, 8 exponent, 7 mantissa bits — the top
// half of an IEEE-754 binary32. Conversion from float uses round-to-nearest-
// even; conversion to float is exact (zero-extend the mantissa).
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>

namespace flashabft {

/// A 16-bit brain floating point value with IEEE-like semantics.
///
/// Arithmetic is intentionally not provided on the type itself: the simulator
/// performs arithmetic in a wider type and rounds on register write-back,
/// which mirrors the hardware (bf16 operands, wide accumulation). Use
/// `bf16::round(x)` to model an operator whose *result register* is bf16.
class bf16 {
 public:
  constexpr bf16() = default;

  /// Constructs by rounding a binary32 value to the nearest bfloat16 (RNE).
  explicit bf16(float value) : bits_(round_bits(value)) {}

  /// Reinterprets raw storage bits (used by fault injection).
  static constexpr bf16 from_bits(std::uint16_t bits) {
    bf16 r;
    r.bits_ = bits;
    return r;
  }

  /// Exact widening conversion to binary32.
  [[nodiscard]] float to_float() const {
    const std::uint32_t wide = std::uint32_t(bits_) << 16;
    float out;
    std::memcpy(&out, &wide, sizeof(out));
    return out;
  }

  /// Raw storage bits (sign | exponent | mantissa).
  [[nodiscard]] constexpr std::uint16_t bits() const { return bits_; }

  /// Rounds a float through bf16 precision and widens back — models a bf16
  /// register on a datapath computing in fp32.
  static float round(float value) { return bf16(value).to_float(); }

  [[nodiscard]] bool is_nan() const {
    return exponent_bits() == 0xFF && mantissa_bits() != 0;
  }
  [[nodiscard]] bool is_inf() const {
    return exponent_bits() == 0xFF && mantissa_bits() == 0;
  }

  friend constexpr bool operator==(bf16 a, bf16 b) {
    return a.bits_ == b.bits_;  // bit equality; NaN != NaN is *not* modeled
  }

  static constexpr int kMantissaBits = 7;
  static constexpr int kExponentBits = 8;
  static constexpr int kStorageBits = 16;

 private:
  [[nodiscard]] constexpr std::uint16_t exponent_bits() const {
    return std::uint16_t((bits_ >> 7) & 0xFF);
  }
  [[nodiscard]] constexpr std::uint16_t mantissa_bits() const {
    return std::uint16_t(bits_ & 0x7F);
  }

  static std::uint16_t round_bits(float value);

  std::uint16_t bits_ = 0;
};

static_assert(sizeof(bf16) == 2, "bf16 must be exactly 16 bits of storage");

}  // namespace flashabft
