#include "numerics/bfloat16.hpp"

namespace flashabft {

std::uint16_t bf16::round_bits(float value) {
  std::uint32_t in;
  std::memcpy(&in, &value, sizeof(in));

  const std::uint32_t exponent = (in >> 23) & 0xFF;
  const std::uint32_t mantissa = in & 0x7FFFFF;

  if (exponent == 0xFF) {
    // Inf propagates exactly. NaN payloads are truncated bit-exactly —
    // required so that register bit flips round-trip — and only quieted
    // when truncation would otherwise produce an Inf pattern.
    if (mantissa == 0) return std::uint16_t(in >> 16);
    const std::uint16_t truncated = std::uint16_t(in >> 16);
    if ((truncated & 0x7F) == 0) return std::uint16_t(truncated | 0x0040);
    return truncated;
  }

  // Round to nearest even on the truncated 16 low bits.
  const std::uint32_t rounding_bias = 0x7FFF + ((in >> 16) & 1);
  const std::uint32_t rounded = in + rounding_bias;
  return std::uint16_t(rounded >> 16);
}

}  // namespace flashabft
