// Hardware-style exponential unit model.
//
// FlashAttention accelerators evaluate e^x for x = s_i - m_i <= 0 and
// x = m_{i-1} - m_i <= 0 once per cycle (paper Alg. 2/3). Hardware
// implementations use range reduction to e^x = 2^(x*log2(e)) followed by a
// small polynomial on the fractional part. This model reproduces that
// structure so the simulator's arithmetic error profile resembles an HLS
// datapath rather than libm, while an Exact mode is available for golden
// reference runs.
#pragma once

namespace flashabft {

/// Fidelity of the exponential evaluation.
enum class ExpMode {
  kExact,       ///< std::exp in double — golden reference.
  kHardware,    ///< range-reduced degree-5 polynomial in fp32 — datapath model.
};

/// Evaluates e^x under the given mode. Inputs are expected to be <= 0 in the
/// attention recurrences (max-subtracted); positive inputs still evaluate
/// correctly for robustness under injected faults (a corrupted m register can
/// make s - m positive, and the unit must then saturate/overflow the way
/// fp32 hardware would).
[[nodiscard]] double eval_exp(double x, ExpMode mode);

/// The hardware polynomial path in isolation (fp32 in/out).
[[nodiscard]] float hardware_exp(float x);

}  // namespace flashabft
