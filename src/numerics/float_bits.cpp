#include "numerics/float_bits.hpp"

#include "common/ensure.hpp"

namespace flashabft {

float flip_bit(float v, int bit) {
  FLASHABFT_ENSURE_MSG(bit >= 0 && bit < 32, "binary32 bit " << bit);
  return bits_to_float(float_to_bits(v) ^ (std::uint32_t(1) << bit));
}

double flip_bit(double v, int bit) {
  FLASHABFT_ENSURE_MSG(bit >= 0 && bit < 64, "binary64 bit " << bit);
  return bits_to_double(double_to_bits(v) ^ (std::uint64_t(1) << bit));
}

bf16 flip_bit(bf16 v, int bit) {
  FLASHABFT_ENSURE_MSG(bit >= 0 && bit < 16, "bf16 bit " << bit);
  return bf16::from_bits(std::uint16_t(v.bits() ^ (std::uint16_t(1) << bit)));
}

fp16 flip_bit(fp16 v, int bit) {
  FLASHABFT_ENSURE_MSG(bit >= 0 && bit < 16, "fp16 bit " << bit);
  return fp16::from_bits(std::uint16_t(v.bits() ^ (std::uint16_t(1) << bit)));
}

float narrow_to_float_bitexact(double v) {
  const std::uint64_t bits = double_to_bits(v);
  const bool is_nan = ((bits >> 52) & 0x7FF) == 0x7FF && (bits << 12) != 0;
  if (!is_nan) return float(v);
  const std::uint32_t sign = std::uint32_t(bits >> 63) << 31;
  // Truncate the 52-bit payload to 23 bits; keep at least one payload bit
  // set so the result stays NaN rather than collapsing to Inf.
  std::uint32_t payload = std::uint32_t((bits >> 29) & 0x7FFFFF);
  if (payload == 0) payload = 1;
  return bits_to_float(sign | 0x7F800000u | payload);
}

double widen_to_double_bitexact(float v) {
  const std::uint32_t bits = float_to_bits(v);
  const bool is_nan = ((bits >> 23) & 0xFF) == 0xFF && (bits << 9) != 0;
  if (!is_nan) return double(v);
  const std::uint64_t sign = std::uint64_t(bits >> 31) << 63;
  const std::uint64_t payload = std::uint64_t(bits & 0x7FFFFF) << 29;
  return bits_to_double(sign | 0x7FF0000000000000ULL | payload);
}

std::uint64_t ulp_distance(double a, double b) {
  // Map to a monotone unsigned ordering (sign-magnitude to biased).
  auto ordered = [](double v) -> std::uint64_t {
    std::uint64_t bits = double_to_bits(v);
    if (bits & (std::uint64_t(1) << 63)) return ~bits + 1;
    return bits | (std::uint64_t(1) << 63);
  };
  const std::uint64_t ua = ordered(a);
  const std::uint64_t ub = ordered(b);
  return ua > ub ? ua - ub : ub - ua;
}

}  // namespace flashabft
