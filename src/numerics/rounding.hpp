// Register write-back rounding policies.
//
// The cycle simulator computes every update in double precision and then
// rounds to the declared width of the destination register, mirroring a
// datapath whose operators produce wide results latched into narrower
// registers. The storage width is also what the fault injector flips.
#pragma once

#include <cstdint>
#include <string_view>

#include "numerics/bfloat16.hpp"
#include "numerics/float16.hpp"
#include "numerics/float_bits.hpp"

namespace flashabft {

/// Storage format of a hardware register holding a real number.
enum class NumberFormat : std::uint8_t {
  kBf16,    ///< 16-bit brain float (datapath operands).
  kFp16,    ///< IEEE binary16 (register-width ablations).
  kFp32,    ///< IEEE binary32 (working accumulators).
  kFp64,    ///< IEEE binary64 (checksum accumulators, paper §IV-A).
};

/// Bit width of a register in the given format (the fault surface size).
[[nodiscard]] constexpr int format_bits(NumberFormat f) {
  switch (f) {
    case NumberFormat::kBf16: return 16;
    case NumberFormat::kFp16: return 16;
    case NumberFormat::kFp32: return 32;
    case NumberFormat::kFp64: return 64;
  }
  return 64;
}

[[nodiscard]] constexpr std::string_view format_name(NumberFormat f) {
  switch (f) {
    case NumberFormat::kBf16: return "bf16";
    case NumberFormat::kFp16: return "fp16";
    case NumberFormat::kFp32: return "fp32";
    case NumberFormat::kFp64: return "fp64";
  }
  return "fp64";
}

/// Rounds a double through the storage format (write-back model). NaN
/// payloads are carried bit-exactly (registers hold raw bits; the FPU's
/// signaling-NaN quieting must not leak into the storage model — fault
/// injections that produce sNaN patterns have to round-trip).
[[nodiscard]] inline double round_to(double value, NumberFormat f) {
  switch (f) {
    case NumberFormat::kBf16:
      return widen_to_double_bitexact(
          bf16::round(narrow_to_float_bitexact(value)));
    case NumberFormat::kFp16:
      return widen_to_double_bitexact(
          fp16::round(narrow_to_float_bitexact(value)));
    case NumberFormat::kFp32:
      return widen_to_double_bitexact(narrow_to_float_bitexact(value));
    case NumberFormat::kFp64:
      return value;
  }
  return value;
}

/// Largest finite value representable in the format.
[[nodiscard]] constexpr double format_max_finite(NumberFormat f) {
  switch (f) {
    case NumberFormat::kBf16: return 3.3895313892515355e38;   // 0x7F7F
    case NumberFormat::kFp16: return 65504.0;                 // 0x7BFF
    case NumberFormat::kFp32: return 3.4028234663852886e38;
    case NumberFormat::kFp64: return 1.7976931348623157e308;
  }
  return 1.7976931348623157e308;
}

/// Saturating write-back: like round_to, but arithmetic overflow clamps to
/// the format's largest finite magnitude instead of producing an infinity.
/// This is how most accelerator datapaths are built (saturating MACs), and
/// it determines whether a fault-induced overflow turns into a detectable
/// huge value or an undetectable NaN chain (inf - inf). NaN inputs pass
/// through unchanged — a register can still *hold* an Inf/NaN pattern if a
/// fault writes one directly.
[[nodiscard]] inline double round_to_saturating(double value,
                                                NumberFormat f) {
  const double rounded = round_to(value, f);
  if (rounded > format_max_finite(f)) return format_max_finite(f);
  if (rounded < -format_max_finite(f)) return -format_max_finite(f);
  return rounded;  // finite values and NaN pass through
}

}  // namespace flashabft
