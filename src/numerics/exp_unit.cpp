#include "numerics/exp_unit.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "numerics/float_bits.hpp"

namespace flashabft {
namespace {

// exp(x) = 2^k * 2^f with x*log2(e) = k + f, f in [-0.5, 0.5].
// 2^f approximated by a degree-7 Taylor/Horner polynomial (max error
// ~5e-9 on the reduced interval). Evaluated in double and rounded to fp32 at
// the unit's output, modeling a <=1-ulp hardware exponential.
double exp2_poly(double f) {
  constexpr double c0 = 1.0;
  constexpr double c1 = 0.693147180559945286;   // ln2
  constexpr double c2 = 0.240226506959100712;   // ln2^2/2!
  constexpr double c3 = 0.055504108664821580;   // ln2^3/3!
  constexpr double c4 = 0.009618129107628477;   // ln2^4/4!
  constexpr double c5 = 0.001333355814642844;   // ln2^5/5!
  constexpr double c6 = 0.000154035303933816;   // ln2^6/6!
  constexpr double c7 = 0.000015252733194910;   // ln2^7/7!
  return c0 +
         f * (c1 +
              f * (c2 +
                   f * (c3 + f * (c4 + f * (c5 + f * (c6 + f * c7))))));
}

}  // namespace

float hardware_exp(float x) {
  if (std::isnan(x)) return x;
  constexpr double kLog2e = 1.4426950408889634;
  const double scaled = double(x) * kLog2e;
  // fp32 exponent range: 2^k representable for k in roughly [-126, 127].
  if (scaled > 128.0) return std::numeric_limits<float>::infinity();
  if (scaled < -150.0) return 0.0f;

  const double k = std::nearbyint(scaled);
  const double f = scaled - k;
  const double pow2f = exp2_poly(f);
  // Scale by 2^k through exponent arithmetic, as hardware would; the final
  // float conversion is the unit's output rounding.
  return float(std::ldexp(pow2f, int(k)));
}

double eval_exp(double x, ExpMode mode) {
  switch (mode) {
    case ExpMode::kExact:
      return std::exp(x);
    case ExpMode::kHardware:
      return double(hardware_exp(float(x)));
  }
  return std::exp(x);  // unreachable; keeps GCC's -Wreturn-type quiet
}

}  // namespace flashabft
