// Bit-level views of floating-point storage, used by the fault injector.
//
// A fault-injection campaign flips one randomly chosen bit of one randomly
// chosen register at a random cycle (paper §IV-B). These helpers perform the
// flips on float / double / bf16 values while preserving IEEE semantics
// (a flip may well produce Inf or NaN — that is part of the experiment; the
// paper's "Silent" category explicitly includes NaN outcomes).
#pragma once

#include <cstdint>
#include <cstring>

#include "numerics/bfloat16.hpp"
#include "numerics/float16.hpp"

namespace flashabft {

[[nodiscard]] inline std::uint32_t float_to_bits(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

[[nodiscard]] inline float bits_to_float(std::uint32_t b) {
  float v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

[[nodiscard]] inline std::uint64_t double_to_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

[[nodiscard]] inline double bits_to_double(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

/// Flips bit `bit` (0 = LSB of the mantissa, 31 = sign) of a binary32 value.
[[nodiscard]] float flip_bit(float v, int bit);

/// Flips bit `bit` (0 = LSB of the mantissa, 63 = sign) of a binary64 value.
[[nodiscard]] double flip_bit(double v, int bit);

/// Flips bit `bit` (0 = LSB of the mantissa, 15 = sign) of a bfloat16 value.
[[nodiscard]] bf16 flip_bit(bf16 v, int bit);

/// Flips bit `bit` (0 = LSB of the mantissa, 15 = sign) of a binary16 value.
[[nodiscard]] fp16 flip_bit(fp16 v, int bit);

/// Units-in-the-last-place distance between two binary64 values of the same
/// sign; used by tests to assert bit-level reproducibility.
[[nodiscard]] std::uint64_t ulp_distance(double a, double b);

/// double -> float conversion that preserves NaN payloads bit-exactly
/// (mantissa truncation) instead of letting the FPU quieten signaling NaNs.
/// Hardware registers hold raw bits, so a flip that creates an sNaN must
/// round-trip; the plain cast would set the quiet bit. Non-NaN values use
/// the ordinary (rounding) conversion.
[[nodiscard]] float narrow_to_float_bitexact(double v);

/// float -> double widening that preserves NaN payloads bit-exactly
/// (mantissa left-shift). Non-NaN values use the ordinary exact widening.
[[nodiscard]] double widen_to_double_bitexact(float v);

}  // namespace flashabft
