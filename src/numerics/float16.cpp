#include "numerics/float16.hpp"

#include <cstring>

namespace flashabft {

namespace {

std::uint32_t f32_bits(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

float f32_from_bits(std::uint32_t b) {
  float v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

}  // namespace

std::uint16_t fp16::round_bits(float value) {
  const std::uint32_t in = f32_bits(value);
  const std::uint32_t sign = (in >> 16) & 0x8000;
  const std::int32_t exponent = std::int32_t((in >> 23) & 0xFF) - 127;
  std::uint32_t mantissa = in & 0x7FFFFF;

  if (exponent == 128) {  // Inf / NaN
    if (mantissa == 0) return std::uint16_t(sign | 0x7C00);
    // Truncate the NaN payload bit-exactly (register flips must
    // round-trip); quieten only if truncation would yield the Inf pattern.
    const std::uint32_t payload = mantissa >> 13;
    return std::uint16_t(sign | 0x7C00 | (payload == 0 ? 1 : payload));
  }
  if (exponent > 15) {  // overflow -> inf
    return std::uint16_t(sign | 0x7C00);
  }
  if (exponent >= -14) {  // normal range
    // 23-bit mantissa -> 10 bits with round-to-nearest-even.
    std::uint32_t rounded = mantissa + 0x0FFF + ((mantissa >> 13) & 1);
    std::uint32_t exp_out = std::uint32_t(exponent + 15);
    if (rounded & 0x800000) {  // mantissa overflowed into the exponent
      rounded = 0;
      ++exp_out;
      if (exp_out >= 31) return std::uint16_t(sign | 0x7C00);
    }
    return std::uint16_t(sign | (exp_out << 10) | (rounded >> 13));
  }
  if (exponent >= -24) {  // subnormal half range
    // Add the hidden bit, then shift right by the denormalization amount.
    mantissa |= 0x800000;
    const int shift = -exponent - 14 + 13;
    const std::uint32_t half = std::uint32_t(1) << (shift - 1);
    std::uint32_t rounded = (mantissa + half - 1 +
                             ((mantissa >> shift) & 1)) >>
                            shift;
    return std::uint16_t(sign | rounded);
  }
  return std::uint16_t(sign);  // underflow -> signed zero
}

float fp16::to_float() const {
  const std::uint32_t sign = std::uint32_t(bits_ & 0x8000) << 16;
  const std::uint32_t exponent = (bits_ >> 10) & 0x1F;
  const std::uint32_t mantissa = bits_ & 0x3FF;

  if (exponent == 0x1F) {  // Inf / NaN
    return f32_from_bits(sign | 0x7F800000 | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) return f32_from_bits(sign);  // signed zero
    // Subnormal half: normalize into a float.
    int e = -14;
    std::uint32_t m = mantissa;
    while ((m & 0x400) == 0) {
      m <<= 1;
      --e;
    }
    m &= 0x3FF;
    return f32_from_bits(sign | std::uint32_t(e + 127) << 23 | (m << 13));
  }
  return f32_from_bits(sign | ((exponent - 15 + 127) << 23) |
                       (mantissa << 13));
}

}  // namespace flashabft
